//! Recursive-descent parser for the C subset.
//!
//! The parser exists so that seed corpora, regression programs from the
//! paper's figures, and the Juliet-style baseline suite can be written as C
//! text; the generators construct ASTs directly.

use crate::ast::*;
use crate::lexer::{lex, LexError, SpannedToken, Token};
use crate::loc::Loc;
use crate::types::{IntType, StructDef, Type};
use std::fmt;

/// A parse (or lex) failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where (1-based line, 0-based column).
    pub loc: Loc,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError { message: e.message, loc: Loc::new(e.line, e.col) }
    }
}

/// Parses a complete translation unit.
///
/// Locations of all nodes are taken from the source text; node ids are
/// assigned fresh.
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic violation of the
/// subset grammar.
///
/// ```
/// let p = ubfuzz_minic::parse("int main(void) { return 0; }").unwrap();
/// assert_eq!(p.functions[0].name, "main");
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0, program: Program::new() };
    parser.parse_program()?;
    let mut program = parser.program;
    program.assign_ids();
    Ok(program)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    program: Program,
}

const TYPE_KEYWORDS: &[&str] = &["void", "char", "short", "int", "long", "unsigned", "signed", "struct"];

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_at(&self, n: usize) -> &Token {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].token
    }

    fn here(&self) -> Loc {
        let t = &self.tokens[self.pos];
        Loc::new(t.line, t.col)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: msg.into(), loc: self.here() })
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Token::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => self.error(format!("expected `{p}`, found `{other}`")),
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Token::Punct(q) if *q == p)
    }

    fn eat_if_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.error(format!("expected identifier, found `{other}`")),
        }
    }

    fn at_type_start(&self) -> bool {
        matches!(self.peek(), Token::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    fn parse_program(&mut self) -> Result<(), ParseError> {
        while !matches!(self.peek(), Token::Eof) {
            self.parse_top_level()?;
        }
        Ok(())
    }

    fn parse_top_level(&mut self) -> Result<(), ParseError> {
        // `struct S { ... };` definition?
        if matches!(self.peek(), Token::Ident(s) if s == "struct")
            && matches!(self.peek_at(2), Token::Punct("{"))
        {
            self.bump(); // struct
            let name = self.eat_ident()?;
            self.eat_punct("{")?;
            let mut fields = Vec::new();
            while !self.at_punct("}") {
                let base = self.parse_base_type()?;
                let (fname, fty) = self.parse_declarator(base)?;
                self.eat_punct(";")?;
                fields.push((fname, fty));
            }
            self.eat_punct("}")?;
            self.eat_punct(";")?;
            self.program.structs.push(StructDef { name, fields });
            return Ok(());
        }
        let base = self.parse_base_type()?;
        let save = self.pos;
        let (name, ty) = self.parse_declarator(base.clone())?;
        if self.at_punct("(") {
            // function definition
            self.pos = save;
            // re-parse pointer stars for the return type
            let mut ret = base;
            while self.eat_if_punct("*") {
                ret = Type::ptr(ret);
            }
            let fname = self.eat_ident()?;
            self.eat_punct("(")?;
            let mut params = Vec::new();
            if matches!(self.peek(), Token::Ident(s) if s == "void")
                && matches!(self.peek_at(1), Token::Punct(")"))
            {
                self.bump();
            } else if !self.at_punct(")") {
                loop {
                    let pbase = self.parse_base_type()?;
                    let (pname, pty) = self.parse_declarator(pbase)?;
                    params.push((pname, pty.decayed()));
                    if !self.eat_if_punct(",") {
                        break;
                    }
                }
            }
            self.eat_punct(")")?;
            let body = self.parse_block()?;
            self.program.functions.push(Function { name: fname, ret, params, body });
        } else {
            // global declaration
            let init = if self.eat_if_punct("=") { Some(self.parse_initializer()?) } else { None };
            self.eat_punct(";")?;
            self.program.globals.push(Decl { name, ty, init });
        }
        Ok(())
    }

    /// Base type without declarator decorations: `unsigned int`, `struct S`, …
    fn parse_base_type(&mut self) -> Result<Type, ParseError> {
        let mut signedness: Option<bool> = None;
        loop {
            match self.peek() {
                Token::Ident(s) if s == "unsigned" => {
                    signedness = Some(false);
                    self.bump();
                }
                Token::Ident(s) if s == "signed" => {
                    signedness = Some(true);
                    self.bump();
                }
                _ => break,
            }
        }
        let ty = match self.peek().clone() {
            Token::Ident(s) => match s.as_str() {
                "void" => {
                    self.bump();
                    if signedness.is_some() {
                        return self.error("void cannot be signed or unsigned");
                    }
                    Type::Void
                }
                "char" => {
                    self.bump();
                    Type::Int(IntType { width: crate::types::IntWidth::W8, signed: signedness.unwrap_or(true) })
                }
                "short" => {
                    self.bump();
                    self.eat_optional_int_keyword();
                    Type::Int(IntType { width: crate::types::IntWidth::W16, signed: signedness.unwrap_or(true) })
                }
                "int" => {
                    self.bump();
                    Type::Int(IntType { width: crate::types::IntWidth::W32, signed: signedness.unwrap_or(true) })
                }
                "long" => {
                    self.bump();
                    self.eat_optional_int_keyword();
                    Type::Int(IntType { width: crate::types::IntWidth::W64, signed: signedness.unwrap_or(true) })
                }
                "struct" => {
                    self.bump();
                    let name = self.eat_ident()?;
                    match self.program.struct_index(&name) {
                        Some(idx) => Type::Struct(idx),
                        None => return self.error(format!("unknown struct `{name}`")),
                    }
                }
                other => {
                    if signedness.is_some() {
                        Type::int()
                    } else {
                        return self.error(format!("expected type, found `{other}`"));
                    }
                }
            },
            other => {
                if signedness.is_some() {
                    Type::int()
                } else {
                    return self.error(format!("expected type, found `{other}`"));
                }
            }
        };
        Ok(ty)
    }

    fn eat_optional_int_keyword(&mut self) {
        if matches!(self.peek(), Token::Ident(s) if s == "int") {
            self.bump();
        }
    }

    /// `*`* name (`[N]`)* — returns the declared name and the full type.
    fn parse_declarator(&mut self, mut base: Type) -> Result<(String, Type), ParseError> {
        while self.eat_if_punct("*") {
            base = Type::ptr(base);
        }
        let name = self.eat_ident()?;
        let mut dims = Vec::new();
        while self.eat_if_punct("[") {
            match self.bump() {
                Token::IntLit(v, ..) if v >= 0 => dims.push(v as usize),
                other => return self.error(format!("expected array size, found `{other}`")),
            }
            self.eat_punct("]")?;
        }
        for d in dims.into_iter().rev() {
            base = Type::array(base, d);
        }
        Ok((name, base))
    }

    fn parse_initializer(&mut self) -> Result<Init, ParseError> {
        if self.eat_if_punct("{") {
            let mut items = Vec::new();
            if !self.at_punct("}") {
                loop {
                    items.push(self.parse_initializer()?);
                    if !self.eat_if_punct(",") {
                        break;
                    }
                    if self.at_punct("}") {
                        break; // trailing comma
                    }
                }
            }
            self.eat_punct("}")?;
            Ok(Init::List(items))
        } else {
            Ok(Init::Expr(self.parse_expr()?))
        }
    }

    fn parse_block(&mut self) -> Result<Block, ParseError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            stmts.push(self.parse_stmt()?);
        }
        self.eat_punct("}")?;
        Ok(Block { stmts })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let loc = self.here();
        let mut stmt = if self.at_punct("{") {
            Stmt::new(StmtKind::Block(self.parse_block()?))
        } else if self.at_type_start() && !self.is_struct_expr_start() {
            let base = self.parse_base_type()?;
            let (name, ty) = self.parse_declarator(base)?;
            let init = if self.eat_if_punct("=") { Some(self.parse_initializer()?) } else { None };
            self.eat_punct(";")?;
            Stmt::new(StmtKind::Decl(Decl { name, ty, init }))
        } else if matches!(self.peek(), Token::Ident(s) if s == "if") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.parse_expr()?;
            self.eat_punct(")")?;
            let then = self.parse_block_or_single()?;
            let els = if matches!(self.peek(), Token::Ident(s) if s == "else") {
                self.bump();
                Some(self.parse_block_or_single()?)
            } else {
                None
            };
            Stmt::new(StmtKind::If(cond, then, els))
        } else if matches!(self.peek(), Token::Ident(s) if s == "while") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.parse_expr()?;
            self.eat_punct(")")?;
            let body = self.parse_block_or_single()?;
            Stmt::new(StmtKind::While(cond, body))
        } else if matches!(self.peek(), Token::Ident(s) if s == "for") {
            self.bump();
            self.eat_punct("(")?;
            let init = if self.at_punct(";") {
                self.bump();
                None
            } else if self.at_type_start() {
                let iloc = self.here();
                let base = self.parse_base_type()?;
                let (name, ty) = self.parse_declarator(base)?;
                let dinit =
                    if self.eat_if_punct("=") { Some(self.parse_initializer()?) } else { None };
                self.eat_punct(";")?;
                let mut s = Stmt::new(StmtKind::Decl(Decl { name, ty, init: dinit }));
                s.loc = iloc;
                Some(Box::new(s))
            } else {
                let iloc = self.here();
                let e = self.parse_expr()?;
                self.eat_punct(";")?;
                let mut s = Stmt::new(StmtKind::Expr(e));
                s.loc = iloc;
                Some(Box::new(s))
            };
            let cond = if self.at_punct(";") { None } else { Some(self.parse_expr()?) };
            self.eat_punct(";")?;
            let step = if self.at_punct(")") { None } else { Some(self.parse_expr()?) };
            self.eat_punct(")")?;
            let body = self.parse_block_or_single()?;
            Stmt::new(StmtKind::For { init, cond, step, body })
        } else if matches!(self.peek(), Token::Ident(s) if s == "return") {
            self.bump();
            let e = if self.at_punct(";") { None } else { Some(self.parse_expr()?) };
            self.eat_punct(";")?;
            Stmt::new(StmtKind::Return(e))
        } else if matches!(self.peek(), Token::Ident(s) if s == "break") {
            self.bump();
            self.eat_punct(";")?;
            Stmt::new(StmtKind::Break)
        } else if matches!(self.peek(), Token::Ident(s) if s == "continue") {
            self.bump();
            self.eat_punct(";")?;
            Stmt::new(StmtKind::Continue)
        } else {
            let e = self.parse_expr()?;
            self.eat_punct(";")?;
            Stmt::new(StmtKind::Expr(e))
        };
        stmt.loc = loc;
        Ok(stmt)
    }

    fn is_struct_expr_start(&self) -> bool {
        // `struct` is always a type here; this hook exists for symmetry.
        false
    }

    fn parse_block_or_single(&mut self) -> Result<Block, ParseError> {
        if self.at_punct("{") {
            self.parse_block()
        } else {
            let s = self.parse_stmt()?;
            Ok(Block { stmts: vec![s] })
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<Expr, ParseError> {
        let loc = self.here();
        let lhs = self.parse_conditional()?;
        let op = match self.peek() {
            Token::Punct("=") => None,
            Token::Punct("+=") => Some(BinOp::Add),
            Token::Punct("-=") => Some(BinOp::Sub),
            Token::Punct("*=") => Some(BinOp::Mul),
            Token::Punct("/=") => Some(BinOp::Div),
            Token::Punct("%=") => Some(BinOp::Rem),
            Token::Punct("<<=") => Some(BinOp::Shl),
            Token::Punct(">>=") => Some(BinOp::Shr),
            Token::Punct("&=") => Some(BinOp::BitAnd),
            Token::Punct("|=") => Some(BinOp::BitOr),
            Token::Punct("^=") => Some(BinOp::BitXor),
            _ => return Ok(lhs),
        };
        if !matches!(
            self.peek(),
            Token::Punct("=")
                | Token::Punct("+=")
                | Token::Punct("-=")
                | Token::Punct("*=")
                | Token::Punct("/=")
                | Token::Punct("%=")
                | Token::Punct("<<=")
                | Token::Punct(">>=")
                | Token::Punct("&=")
                | Token::Punct("|=")
                | Token::Punct("^=")
        ) {
            return Ok(lhs);
        }
        if !lhs.is_lvalue() {
            return self.error("assignment target is not an lvalue");
        }
        self.bump();
        let rhs = self.parse_assignment()?;
        let kind = match op {
            None => ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
            Some(op) => ExprKind::CompoundAssign(op, Box::new(lhs), Box::new(rhs)),
        };
        let mut e = Expr::new(kind);
        e.loc = loc;
        Ok(e)
    }

    fn parse_conditional(&mut self) -> Result<Expr, ParseError> {
        let loc = self.here();
        let cond = self.parse_binary(0)?;
        if self.eat_if_punct("?") {
            let t = self.parse_expr()?;
            self.eat_punct(":")?;
            let f = self.parse_conditional()?;
            let mut e = Expr::new(ExprKind::Cond(Box::new(cond), Box::new(t), Box::new(f)));
            e.loc = loc;
            Ok(e)
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self, level: u8) -> Option<BinOp> {
        let op = match self.peek() {
            Token::Punct(p) => *p,
            _ => return None,
        };
        let (bop, lvl) = match op {
            "||" => (BinOp::LogOr, 0),
            "&&" => (BinOp::LogAnd, 1),
            "|" => (BinOp::BitOr, 2),
            "^" => (BinOp::BitXor, 3),
            "&" => (BinOp::BitAnd, 4),
            "==" => (BinOp::Eq, 5),
            "!=" => (BinOp::Ne, 5),
            "<" => (BinOp::Lt, 6),
            "<=" => (BinOp::Le, 6),
            ">" => (BinOp::Gt, 6),
            ">=" => (BinOp::Ge, 6),
            "<<" => (BinOp::Shl, 7),
            ">>" => (BinOp::Shr, 7),
            "+" => (BinOp::Add, 8),
            "-" => (BinOp::Sub, 8),
            "*" => (BinOp::Mul, 9),
            "/" => (BinOp::Div, 9),
            "%" => (BinOp::Rem, 9),
            _ => return None,
        };
        (lvl == level).then_some(bop)
    }

    fn parse_binary(&mut self, level: u8) -> Result<Expr, ParseError> {
        if level > 9 {
            return self.parse_unary();
        }
        let loc = self.here();
        let mut lhs = self.parse_binary(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.parse_binary(level + 1)?;
            let mut e = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)));
            e.loc = loc;
            lhs = e;
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let loc = self.here();
        let mut e = match self.peek().clone() {
            Token::Punct("-") => {
                self.bump();
                Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(self.parse_unary()?)))
            }
            Token::Punct("!") => {
                self.bump();
                Expr::new(ExprKind::Unary(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            Token::Punct("~") => {
                self.bump();
                Expr::new(ExprKind::Unary(UnOp::BitNot, Box::new(self.parse_unary()?)))
            }
            Token::Punct("*") => {
                self.bump();
                Expr::new(ExprKind::Deref(Box::new(self.parse_unary()?)))
            }
            Token::Punct("&") => {
                self.bump();
                Expr::new(ExprKind::AddrOf(Box::new(self.parse_unary()?)))
            }
            Token::Punct("++") => {
                self.bump();
                Expr::new(ExprKind::PreInc(Box::new(self.parse_unary()?)))
            }
            Token::Punct("--") => {
                self.bump();
                Expr::new(ExprKind::PreDec(Box::new(self.parse_unary()?)))
            }
            Token::Punct("(") if self.cast_ahead() => {
                self.bump();
                let base = self.parse_base_type()?;
                let mut ty = base;
                while self.eat_if_punct("*") {
                    ty = Type::ptr(ty);
                }
                self.eat_punct(")")?;
                Expr::new(ExprKind::Cast(ty, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_postfix()?,
        };
        if !e.loc.is_known() {
            e.loc = loc;
        }
        Ok(e)
    }

    fn cast_ahead(&self) -> bool {
        matches!(self.peek_at(1), Token::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let loc = self.here();
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_if_punct("[") {
                let idx = self.parse_expr()?;
                self.eat_punct("]")?;
                let mut n = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)));
                n.loc = loc;
                e = n;
            } else if self.eat_if_punct(".") {
                let f = self.eat_ident()?;
                let mut n = Expr::new(ExprKind::Member(Box::new(e), f));
                n.loc = loc;
                e = n;
            } else if self.eat_if_punct("->") {
                let f = self.eat_ident()?;
                let mut n = Expr::new(ExprKind::Arrow(Box::new(e), f));
                n.loc = loc;
                e = n;
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let loc = self.here();
        let mut e = match self.peek().clone() {
            Token::IntLit(v, unsigned, long) => {
                self.bump();
                let ty = match (unsigned, long) {
                    (false, false) => IntType::INT,
                    (true, false) => IntType::UINT,
                    (false, true) => IntType::LONG,
                    (true, true) => IntType::ULONG,
                };
                Expr::new(ExprKind::IntLit(v, ty))
            }
            Token::Ident(name) => {
                self.bump();
                if self.eat_if_punct("(") {
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_if_punct(",") {
                                break;
                            }
                        }
                    }
                    self.eat_punct(")")?;
                    Expr::new(ExprKind::Call(name, args))
                } else {
                    Expr::new(ExprKind::Var(name))
                }
            }
            Token::Punct("(") => {
                self.bump();
                let inner = self.parse_expr()?;
                self.eat_punct(")")?;
                inner
            }
            other => return self.error(format!("expected expression, found `{other}`")),
        };
        if !e.loc.is_known() {
            e.loc = loc;
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_program() {
        let src = r#"
            struct a { int x; };
            struct a b[2];
            struct a *c = b;
            struct a *d = b;
            int k = 0;
            int main(void) {
                *c = *b;
                k = 2;
                *c = *(d + k);
                return c->x;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.globals.len(), 4);
        let main = p.function("main").unwrap();
        assert_eq!(main.body.stmts.len(), 4);
    }

    #[test]
    fn parses_precedence() {
        let p = parse("int main(void) { int x = 1 + 2 * 3 << 1; return x; }").unwrap();
        let main = p.function("main").unwrap();
        if let StmtKind::Decl(d) = &main.body.stmts[0].kind {
            if let Some(Init::Expr(e)) = &d.init {
                // ((1 + (2*3)) << 1)
                assert!(matches!(&e.kind, ExprKind::Binary(BinOp::Shl, ..)));
                return;
            }
        }
        panic!("shape");
    }

    #[test]
    fn parses_casts_and_ptrs() {
        let p = parse("int main(void) { int *p = (int*)0; short s = (short)(1 | 2); return s; }");
        assert!(p.is_ok(), "{p:?}");
    }

    #[test]
    fn parses_for_and_nested_blocks() {
        let src = r#"
            int g;
            int main(void) {
                int acc = 0;
                for (int i = 0; i < 4; i = i + 1) {
                    { int inner = i; acc = acc + inner; }
                }
                while (acc > 100) { acc = acc - 1; }
                if (acc == 6) { g = 1; } else { g = 2; }
                return g;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.function("main").unwrap().body.stmts.len(), 5);
    }

    #[test]
    fn parses_compound_assign_and_preinc() {
        let src = "int main(void) { int x = 0; x += 3; ++x; return x; }";
        let p = parse(src).unwrap();
        let main = p.function("main").unwrap();
        assert!(matches!(
            &main.body.stmts[1].kind,
            StmtKind::Expr(Expr { kind: ExprKind::CompoundAssign(BinOp::Add, ..), .. })
        ));
        assert!(matches!(
            &main.body.stmts[2].kind,
            StmtKind::Expr(Expr { kind: ExprKind::PreInc(..), .. })
        ));
    }

    #[test]
    fn parses_array_decl_and_list_init() {
        let p = parse("int a[2][3] = {{1,2,3},{4,5,6}}; int main(void) { return a[1][2]; }").unwrap();
        assert_eq!(p.globals[0].ty, Type::array(Type::array(Type::int(), 3), 2));
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse("int main(void) { return 1 + ; }").is_err());
        assert!(parse("int main(void) { 3 = x; }").is_err());
        assert!(parse("struct Unknown u;").is_err());
    }

    #[test]
    fn call_and_builtin_parse() {
        let src = r#"
            int f(int a, int b) { return a + b; }
            int main(void) { print_value(f(1, 2)); return 0; }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn locations_recorded() {
        let p = parse("int main(void) {\n    return 42;\n}").unwrap();
        let ret = &p.function("main").unwrap().body.stmts[0];
        assert_eq!(ret.loc.line, 2);
        assert_eq!(ret.loc.col, 4);
    }
}
