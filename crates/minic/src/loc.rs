//! Source locations and AST node identities.

use std::fmt;

/// A source position: 1-based line number and 0-based column offset.
///
/// This is exactly the `(line, offset)` pair that the paper's crash-site
/// mapping oracle compares (Definition 2): the debugger maps the last executed
/// instruction of the crashing binary back to a source `(l, o)` and asks
/// whether the non-crashing binary also executes an instruction at `(l, o)`.
///
/// `Loc::UNKNOWN` (all zeros) marks nodes that have not yet been placed by
/// [`crate::pretty::relocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Loc {
    /// 1-based line number; 0 means "not yet assigned".
    pub line: u32,
    /// 0-based column offset within the line.
    pub col: u32,
}

impl Loc {
    /// The unassigned location.
    pub const UNKNOWN: Loc = Loc { line: 0, col: 0 };

    /// Creates a location from a 1-based line and 0-based column.
    pub fn new(line: u32, col: u32) -> Loc {
        Loc { line, col }
    }

    /// Returns true if this location has been assigned.
    pub fn is_known(self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A unique identity for an AST node within one [`crate::Program`].
///
/// Node ids are stable across pretty-printing and relocation, which lets the
/// UB generator refer to the expressions it matched (paper §3.2.1) when it
/// later queries the execution profile and inserts shadow statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id used for synthesized nodes before [`crate::Program::fresh_id`]
    /// assigns them a real identity.
    pub const DUMMY: NodeId = NodeId(0);
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_loc_is_not_known() {
        assert!(!Loc::UNKNOWN.is_known());
        assert!(Loc::new(1, 0).is_known());
    }

    #[test]
    fn loc_orders_by_line_then_col() {
        assert!(Loc::new(1, 9) < Loc::new(2, 0));
        assert!(Loc::new(2, 1) < Loc::new(2, 4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Loc::new(10, 8).to_string(), "10:8");
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
