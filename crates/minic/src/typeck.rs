//! A permissive C-style type checker.
//!
//! Produces a [`TypeMap`] — the static type of every expression node — which
//! the UB generator's expression matcher consumes (it must know, e.g., that
//! `a` in `a[x]` is an array of known size, or that `x op y` is a *signed*
//! integer operation before proposing an overflow shadow statement).
//!
//! "Permissive" means C rules with implicit conversions: integer types
//! convert freely, any pointer converts to any pointer (a warning in C, not
//! an error), and integers convert to pointers only through explicit casts
//! or the literal `0`.

use crate::ast::*;
use crate::loc::{Loc, NodeId};
use crate::types::{IntType, StructDef, Type};
use std::collections::HashMap;
use std::fmt;

/// Static types of every expression node, keyed by [`NodeId`].
///
/// Array-typed expressions keep their array type (no decay) so that
/// `ArraySize` queries are possible; contexts that need the decayed type call
/// [`Type::decayed`].
pub type TypeMap = HashMap<NodeId, Type>;

/// A type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Description of the violation.
    pub message: String,
    /// Node where it occurred.
    pub loc: Loc,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for TypeError {}

/// Type-checks `p`, returning the expression type map.
///
/// # Errors
///
/// Returns the first [`TypeError`] found: unresolved names, non-integer
/// operands to arithmetic, indexing non-arrays, calling unknown functions
/// with wrong arity, assigning to non-lvalues, etc.
pub fn typecheck(p: &Program) -> Result<TypeMap, TypeError> {
    let mut ck = Checker {
        program: p,
        map: TypeMap::new(),
        scopes: Vec::new(),
        current_fn: None,
        loop_depth: 0,
    };
    ck.program()?;
    Ok(ck.map)
}

struct Checker<'p> {
    program: &'p Program,
    map: TypeMap,
    scopes: Vec<HashMap<String, Type>>,
    current_fn: Option<&'p Function>,
    loop_depth: u32,
}

impl<'p> Checker<'p> {
    fn err<T>(&self, loc: Loc, msg: impl Into<String>) -> Result<T, TypeError> {
        Err(TypeError { message: msg.into(), loc })
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(t.clone());
            }
        }
        self.program.globals.iter().find(|g| g.name == name).map(|g| g.ty.clone())
    }

    fn declare(&mut self, name: &str, ty: Type) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty inside a function")
            .insert(name.to_string(), ty);
    }

    fn structs(&self) -> &'p [StructDef] {
        &self.program.structs
    }

    fn program(&mut self) -> Result<(), TypeError> {
        for g in &self.program.globals {
            if let Some(init) = &g.init {
                self.init(init, &g.ty, Loc::UNKNOWN)?;
            }
        }
        for f in &self.program.functions {
            self.current_fn = Some(f);
            self.scopes.push(HashMap::new());
            for (name, ty) in &f.params {
                self.declare(name, ty.clone());
            }
            self.block(&f.body)?;
            self.scopes.pop();
        }
        Ok(())
    }

    fn init(&mut self, init: &Init, expect: &Type, loc: Loc) -> Result<(), TypeError> {
        match init {
            Init::Expr(e) => {
                let t = self.expr(e)?;
                self.require_convertible(&t, expect, e.loc)
            }
            Init::List(items) => match expect {
                Type::Array(elem, n) => {
                    if items.len() > *n {
                        return self.err(loc, "too many array initializers");
                    }
                    for it in items {
                        self.init(it, elem, loc)?;
                    }
                    Ok(())
                }
                Type::Struct(idx) => {
                    let def = &self.structs()[*idx];
                    if items.len() > def.fields.len() {
                        return self.err(loc, "too many struct initializers");
                    }
                    let field_types: Vec<Type> =
                        def.fields.iter().map(|(_, t)| t.clone()).collect();
                    for (it, fty) in items.iter().zip(field_types.iter()) {
                        self.init(it, fty, loc)?;
                    }
                    Ok(())
                }
                _ => {
                    if items.len() == 1 {
                        self.init(&items[0], expect, loc)
                    } else {
                        self.err(loc, "list initializer for scalar")
                    }
                }
            },
        }
    }

    fn require_convertible(&self, from: &Type, to: &Type, loc: Loc) -> Result<(), TypeError> {
        let from = from.decayed();
        let ok = match (&from, to) {
            (Type::Int(_), Type::Int(_)) => true,
            (Type::Ptr(_), Type::Ptr(_)) => true,
            // Integer constant zero is a valid null pointer constant; we
            // accept any integer-to-pointer in initializer position only via
            // explicit cast, but stay permissive for mutated programs.
            (Type::Int(_), Type::Ptr(_)) => true,
            (Type::Ptr(_), Type::Int(_)) => true,
            (Type::Struct(a), Type::Struct(b)) => a == b,
            (Type::Void, Type::Void) => true,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            self.err(loc, format!("cannot convert {from:?} to {to:?}"))
        }
    }

    fn block(&mut self, b: &Block) -> Result<(), TypeError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), TypeError> {
        match &s.kind {
            StmtKind::Decl(d) => {
                if let Some(init) = &d.init {
                    self.init(init, &d.ty, s.loc)?;
                }
                self.declare(&d.name, d.ty.clone());
                Ok(())
            }
            StmtKind::Expr(e) => self.expr(e).map(|_| ()),
            StmtKind::If(c, t, f) => {
                let ct = self.expr(c)?;
                self.require_scalar(&ct, c.loc)?;
                self.block(t)?;
                if let Some(f) = f {
                    self.block(f)?;
                }
                Ok(())
            }
            StmtKind::While(c, b) => {
                let ct = self.expr(c)?;
                self.require_scalar(&ct, c.loc)?;
                self.loop_depth += 1;
                let r = self.block(b);
                self.loop_depth -= 1;
                r
            }
            StmtKind::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                if let Some(c) = cond {
                    let ct = self.expr(c)?;
                    self.require_scalar(&ct, c.loc)?;
                }
                if let Some(st) = step {
                    self.expr(st)?;
                }
                self.loop_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                r
            }
            StmtKind::Return(e) => {
                let ret = self.current_fn.expect("inside function").ret.clone();
                match (e, &ret) {
                    (None, Type::Void) => Ok(()),
                    (None, _) => self.err(s.loc, "missing return value"),
                    (Some(e), _) => {
                        let t = self.expr(e)?;
                        self.require_convertible(&t, &ret, e.loc)
                    }
                }
            }
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    self.err(s.loc, "break/continue outside loop")
                } else {
                    Ok(())
                }
            }
            StmtKind::Block(b) => self.block(b),
        }
    }

    fn require_scalar(&self, t: &Type, loc: Loc) -> Result<(), TypeError> {
        let t = t.decayed();
        if t.is_int() || t.is_ptr() {
            Ok(())
        } else {
            self.err(loc, "expected scalar (int or pointer)")
        }
    }

    fn require_int(&self, t: &Type, loc: Loc) -> Result<IntType, TypeError> {
        match t {
            Type::Int(it) => Ok(*it),
            _ => self.err(loc, format!("expected integer, found {t:?}")),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Type, TypeError> {
        let ty = self.expr_type(e)?;
        self.map.insert(e.id, ty.clone());
        Ok(ty)
    }

    fn expr_type(&mut self, e: &Expr) -> Result<Type, TypeError> {
        match &e.kind {
            ExprKind::IntLit(_, ty) => Ok(Type::Int(*ty)),
            ExprKind::Var(name) => match self.lookup(name) {
                Some(t) => Ok(t),
                None => self.err(e.loc, format!("unknown variable `{name}`")),
            },
            ExprKind::Unary(op, a) => {
                let t = self.expr(a)?;
                match op {
                    UnOp::Not => {
                        self.require_scalar(&t, a.loc)?;
                        Ok(Type::int())
                    }
                    UnOp::Neg | UnOp::BitNot => {
                        let it = self.require_int(&t, a.loc)?;
                        Ok(Type::Int(it.promoted()))
                    }
                }
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.expr(a)?.decayed();
                let tb = self.expr(b)?.decayed();
                match op {
                    BinOp::Add | BinOp::Sub if ta.is_ptr() || tb.is_ptr() => {
                        match (&ta, &tb, op) {
                            (Type::Ptr(_), Type::Int(_), _) => Ok(ta),
                            (Type::Int(_), Type::Ptr(_), BinOp::Add) => Ok(tb),
                            (Type::Ptr(_), Type::Ptr(_), BinOp::Sub) => {
                                Ok(Type::Int(IntType::LONG))
                            }
                            _ => self.err(e.loc, "invalid pointer arithmetic"),
                        }
                    }
                    BinOp::LogAnd | BinOp::LogOr => {
                        self.require_scalar(&ta, a.loc)?;
                        self.require_scalar(&tb, b.loc)?;
                        Ok(Type::int())
                    }
                    _ if op.is_comparison() => {
                        if ta.is_ptr() && tb.is_ptr() {
                            return Ok(Type::int());
                        }
                        if ta.is_ptr() || tb.is_ptr() {
                            // pointer vs integer: only null comparisons are
                            // idiomatic; accept permissively.
                            return Ok(Type::int());
                        }
                        self.require_int(&ta, a.loc)?;
                        self.require_int(&tb, b.loc)?;
                        Ok(Type::int())
                    }
                    _ if op.is_shift() => {
                        let la = self.require_int(&ta, a.loc)?;
                        self.require_int(&tb, b.loc)?;
                        Ok(Type::Int(la.promoted()))
                    }
                    _ => {
                        let la = self.require_int(&ta, a.loc)?;
                        let lb = self.require_int(&tb, b.loc)?;
                        Ok(Type::Int(la.unify(lb)))
                    }
                }
            }
            ExprKind::Assign(l, r) => {
                if !l.is_lvalue() {
                    return self.err(l.loc, "assignment to non-lvalue");
                }
                let tl = self.expr(l)?;
                let tr = self.expr(r)?;
                self.require_convertible(&tr, &tl, r.loc)?;
                Ok(tl)
            }
            ExprKind::CompoundAssign(op, l, r) => {
                if !l.is_lvalue() {
                    return self.err(l.loc, "assignment to non-lvalue");
                }
                let tl = self.expr(l)?;
                let tr = self.expr(r)?.decayed();
                if tl.is_ptr() && matches!(op, BinOp::Add | BinOp::Sub) {
                    self.require_int(&tr, r.loc)?;
                } else {
                    self.require_int(&tl.decayed(), l.loc)?;
                    self.require_int(&tr, r.loc)?;
                }
                Ok(tl)
            }
            ExprKind::PreInc(a) | ExprKind::PreDec(a) => {
                if !a.is_lvalue() {
                    return self.err(a.loc, "++/-- on non-lvalue");
                }
                let t = self.expr(a)?;
                self.require_scalar(&t, a.loc)?;
                Ok(t)
            }
            ExprKind::Index(base, idx) => {
                let tb = self.expr(base)?;
                let ti = self.expr(idx)?;
                self.require_int(&ti.decayed(), idx.loc)?;
                match tb.pointee() {
                    Some(elem) => Ok(elem.clone()),
                    None => self.err(base.loc, "indexing a non-array/pointer"),
                }
            }
            ExprKind::Member(base, field) => {
                let tb = self.expr(base)?;
                match tb {
                    Type::Struct(idx) => {
                        let def = &self.structs()[idx];
                        match def.field_offset(field, self.structs()) {
                            Some((_, ty)) => Ok(ty.clone()),
                            None => self.err(e.loc, format!("no field `{field}`")),
                        }
                    }
                    _ => self.err(base.loc, "member access on non-struct"),
                }
            }
            ExprKind::Arrow(base, field) => {
                let tb = self.expr(base)?.decayed();
                match tb {
                    Type::Ptr(inner) => match *inner {
                        Type::Struct(idx) => {
                            let def = &self.structs()[idx];
                            match def.field_offset(field, self.structs()) {
                                Some((_, ty)) => Ok(ty.clone()),
                                None => self.err(e.loc, format!("no field `{field}`")),
                            }
                        }
                        _ => self.err(base.loc, "-> on non-struct pointer"),
                    },
                    _ => self.err(base.loc, "-> on non-pointer"),
                }
            }
            ExprKind::AddrOf(a) => {
                if !a.is_lvalue() {
                    return self.err(a.loc, "address of non-lvalue");
                }
                let t = self.expr(a)?;
                Ok(Type::ptr(t))
            }
            ExprKind::Deref(a) => {
                let t = self.expr(a)?.decayed();
                match t {
                    Type::Ptr(inner) => Ok(*inner),
                    _ => self.err(a.loc, "dereference of non-pointer"),
                }
            }
            ExprKind::Cast(ty, a) => {
                self.expr(a)?;
                Ok(ty.clone())
            }
            ExprKind::Call(name, args) => {
                for a in args {
                    self.expr(a)?;
                }
                match name.as_str() {
                    "malloc" => {
                        if args.len() != 1 {
                            return self.err(e.loc, "malloc takes 1 argument");
                        }
                        Ok(Type::ptr(Type::Void))
                    }
                    "free" => {
                        if args.len() != 1 {
                            return self.err(e.loc, "free takes 1 argument");
                        }
                        Ok(Type::Void)
                    }
                    "print_value" => {
                        if args.len() != 1 {
                            return self.err(e.loc, "print_value takes 1 argument");
                        }
                        Ok(Type::Void)
                    }
                    _ => match self.program.function(name) {
                        Some(f) => {
                            if f.params.len() != args.len() {
                                return self.err(
                                    e.loc,
                                    format!(
                                        "`{name}` expects {} arguments, got {}",
                                        f.params.len(),
                                        args.len()
                                    ),
                                );
                            }
                            Ok(f.ret.clone())
                        }
                        None => self.err(e.loc, format!("unknown function `{name}`")),
                    },
                }
            }
            ExprKind::Cond(c, t, f) => {
                let tc = self.expr(c)?;
                self.require_scalar(&tc, c.loc)?;
                let tt = self.expr(t)?.decayed();
                let tf = self.expr(f)?.decayed();
                match (&tt, &tf) {
                    (Type::Int(a), Type::Int(b)) => Ok(Type::Int(a.unify(*b))),
                    (Type::Ptr(_), Type::Ptr(_)) => Ok(tt),
                    (Type::Ptr(_), Type::Int(_)) => Ok(tt),
                    (Type::Int(_), Type::Ptr(_)) => Ok(tf),
                    _ if tt == tf => Ok(tt),
                    _ => self.err(e.loc, "incompatible conditional branches"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::visit::for_each_expr;

    fn check(src: &str) -> Result<TypeMap, TypeError> {
        typecheck(&parse(src).unwrap())
    }

    #[test]
    fn accepts_valid_programs() {
        assert!(check("int main(void) { return 0; }").is_ok());
        assert!(check(
            "struct s { int x; };
             struct s v; struct s *p = &v;
             int a[3];
             int main(void) { p->x = a[1]; v.x += 2; return p->x; }"
        )
        .is_ok());
    }

    #[test]
    fn records_expression_types() {
        let src = "int a[5]; int main(void) { return a[2]; }";
        let p = parse(src).unwrap();
        let map = typecheck(&p).unwrap();
        let mut array_seen = false;
        for_each_expr(&p, |e| {
            if matches!(e.kind, ExprKind::Var(ref n) if n == "a") {
                assert_eq!(map[&e.id], Type::array(Type::int(), 5));
                array_seen = true;
            }
        });
        assert!(array_seen);
    }

    #[test]
    fn promotion_rules_apply() {
        let src = "char c; short s; int main(void) { return c + s; }";
        let p = parse(src).unwrap();
        let map = typecheck(&p).unwrap();
        let mut add_ty = None;
        for_each_expr(&p, |e| {
            if matches!(e.kind, ExprKind::Binary(BinOp::Add, ..)) {
                add_ty = Some(map[&e.id].clone());
            }
        });
        assert_eq!(add_ty.unwrap(), Type::int());
    }

    #[test]
    fn pointer_arith_types() {
        let src = "int a[4]; int *p = a; int main(void) { long d = (p + 2) - p; return (int)d; }";
        assert!(check(src).is_ok());
    }

    #[test]
    fn rejects_errors() {
        assert!(check("int main(void) { return zzz; }").is_err());
        assert!(check("int main(void) { int x; return x[0]; }").is_err());
        assert!(check("int main(void) { break; }").is_err());
        assert!(check("struct s { int x; }; struct s v; int main(void) { return v.nope; }").is_err());
        assert!(check("int f(int a) { return a; } int main(void) { return f(1, 2); }").is_err());
    }

    #[test]
    fn builtins_typecheck() {
        let src = r#"
            int main(void) {
                int *p = (int*)malloc(40);
                *p = 3;
                print_value(*p);
                free(p);
                return 0;
            }
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn scopes_shadow() {
        let src = "int x; int main(void) { int x = 1; { int x = 2; x = 3; } return x; }";
        assert!(check(src).is_ok());
    }
}
