//! Tokenizer for the C subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword text is kept verbatim; the parser interprets
    /// keywords contextually.
    Ident(String),
    /// Integer literal (decimal or `0x` hex), with `U`/`L` suffixes folded
    /// into the value's type by the parser.
    IntLit(i128, /* unsigned */ bool, /* long */ bool),
    /// Punctuation or operator, e.g. `"<<="`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::IntLit(v, ..) => write!(f, "{v}"),
            Token::Punct(p) => write!(f, "{p}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source position (1-based line, 0-based column).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
    /// 0-based source column.
    pub col: u32,
}

/// An error produced by [`lex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line of the offending character.
    pub line: u32,
    /// 0-based column of the offending character.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "{", "}", "(", ")", "[", "]", ";", ",", "+", "-", "*",
    "/", "%", "<", ">", "=", "&", "|", "^", "!", "~", "?", ":", ".",
];

/// Tokenizes `src`. Line (`//`) and block (`/* */`) comments are skipped.
///
/// # Errors
///
/// Returns [`LexError`] on any character outside the subset's alphabet or an
/// unterminated block comment.
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut line_start = 0usize;
    macro_rules! col {
        () => {
            (i - line_start) as u32
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            line_start = i;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let (sl, sc) = (line, col!());
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated block comment".into(),
                        line: sl,
                        col: sc,
                    });
                }
                if bytes[i] == b'\n' {
                    line += 1;
                    line_start = i + 1;
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            let (sl, sc) = (line, col!());
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(SpannedToken {
                token: Token::Ident(src[start..i].to_string()),
                line: sl,
                col: sc,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let (sl, sc) = (line, col!());
            let mut value: i128;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
                i += 2;
                let hstart = i;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    i += 1;
                }
                if i == hstart {
                    return Err(LexError {
                        message: "hex literal with no digits".into(),
                        line: sl,
                        col: sc,
                    });
                }
                value = i128::from_str_radix(&src[hstart..i], 16).map_err(|_| LexError {
                    message: "hex literal out of range".into(),
                    line: sl,
                    col: sc,
                })?;
            } else {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                value = src[start..i].parse::<i128>().map_err(|_| LexError {
                    message: "integer literal out of range".into(),
                    line: sl,
                    col: sc,
                })?;
            }
            let mut unsigned = false;
            let mut long = false;
            while i < bytes.len() {
                match bytes[i] {
                    b'u' | b'U' => {
                        unsigned = true;
                        i += 1;
                    }
                    b'l' | b'L' => {
                        long = true;
                        i += 1;
                    }
                    _ => break,
                }
            }
            // Negative literals do not exist in C; `-5` is unary minus on 5.
            if value < 0 {
                value = 0;
            }
            out.push(SpannedToken {
                token: Token::IntLit(value, unsigned, long),
                line: sl,
                col: sc,
            });
            continue;
        }
        let mut matched = false;
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(SpannedToken { token: Token::Punct(p), line, col: col!() });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError {
                message: format!("unexpected character {c:?}"),
                line,
                col: col!(),
            });
        }
    }
    out.push(SpannedToken { token: Token::Eof, line, col: col!() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_idents_and_ints() {
        let ts = kinds("int x = 42;");
        assert_eq!(
            ts,
            vec![
                Token::Ident("int".into()),
                Token::Ident("x".into()),
                Token::Punct("="),
                Token::IntLit(42, false, false),
                Token::Punct(";"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_hex_and_suffixes() {
        let ts = kinds("0xfff 7UL 9L");
        assert_eq!(
            ts[..3],
            [
                Token::IntLit(0xfff, false, false),
                Token::IntLit(7, true, true),
                Token::IntLit(9, false, true)
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        let ts = kinds("a <<= b >> c->d");
        assert_eq!(
            ts,
            vec![
                Token::Ident("a".into()),
                Token::Punct("<<="),
                Token::Ident("b".into()),
                Token::Punct(">>"),
                Token::Ident("c".into()),
                Token::Punct("->"),
                Token::Ident("d".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 0));
        assert_eq!((ts[1].line, ts[1].col), (2, 2));
    }

    #[test]
    fn skips_comments() {
        let ts = kinds("a // comment\n/* block\nmore */ b");
        assert_eq!(
            ts,
            vec![Token::Ident("a".into()), Token::Ident("b".into()), Token::Eof]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("int @x;").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
