//! Abstract syntax tree for the C subset.
//!
//! Every [`Expr`] and [`Stmt`] carries a [`NodeId`] (stable identity used by
//! the profiler and the UB generator) and a [`Loc`] (the `(line, offset)`
//! position assigned by [`crate::pretty::relocate`], consumed by crash-site
//! mapping).

use crate::loc::{Loc, NodeId};
use crate::types::{IntType, StructDef, Type};

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise complement `~x`.
    BitNot,
}

/// Binary operators (excluding assignment and short-circuit forms are
/// included as `LogAnd`/`LogOr`, which evaluate lazily).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl BinOp {
    /// True for `+ - * / %` — the operators eligible for the paper's
    /// signed-integer-overflow shadow statements (Table 1 restricts to
    /// arithmetic `op`).
    pub fn is_arith(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem)
    }

    /// True for comparison operators, whose result is always `int` 0/1.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for `<<` and `>>`.
    pub fn is_shift(self) -> bool {
        matches!(self, BinOp::Shl | BinOp::Shr)
    }

    /// The C token for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
        }
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Stable identity within the program.
    pub id: NodeId,
    /// Source position (assigned by relocation).
    pub loc: Loc,
    /// The expression itself.
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal with its type (e.g. `5`, `255UL`).
    IntLit(i128, IntType),
    /// Variable reference, resolved lexically.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation. Short-circuit operators evaluate lazily.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Simple assignment `lhs = rhs`; yields the stored value.
    Assign(Box<Expr>, Box<Expr>),
    /// Compound assignment `lhs op= rhs`.
    CompoundAssign(BinOp, Box<Expr>, Box<Expr>),
    /// Pre-increment `++lvalue`. Lowered to a read-modify-write; the paper's
    /// Fig. 12e bug (LLVM UBSan missing the null check on `++(*a)`) keys on
    /// this construct surviving as an RMW.
    PreInc(Box<Expr>),
    /// Pre-decrement `--lvalue`.
    PreDec(Box<Expr>),
    /// Array subscript `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Struct member access `s.field`.
    Member(Box<Expr>, String),
    /// Struct member access through a pointer `p->field`.
    Arrow(Box<Expr>, String),
    /// Address-of `&lvalue`.
    AddrOf(Box<Expr>),
    /// Dereference `*ptr`.
    Deref(Box<Expr>),
    /// Cast `(type)expr`.
    Cast(Type, Box<Expr>),
    /// Function call. Builtins: `malloc`, `free`, `print_value`.
    Call(String, Vec<Expr>),
    /// Conditional `cond ? then : else`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Creates an expression with dummy id and unknown location; use
    /// [`Program::assign_ids`] or insert via helpers that mint fresh ids.
    pub fn new(kind: ExprKind) -> Expr {
        Expr { id: NodeId::DUMMY, loc: Loc::UNKNOWN, kind }
    }

    /// True if this expression is a syntactic lvalue.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Var(_)
                | ExprKind::Index(..)
                | ExprKind::Member(..)
                | ExprKind::Arrow(..)
                | ExprKind::Deref(_)
        )
    }
}

/// An initializer for a declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// Scalar initializer.
    Expr(Expr),
    /// Brace-enclosed list for arrays and structs. May be shorter than the
    /// aggregate; the remainder is zero-initialized (C semantics).
    List(Vec<Init>),
}

/// A declaration (global or local): `type name = init;`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Declared name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer. Globals without one are zero-initialized;
    /// locals without one are uninitialized (the raw material for the
    /// use-of-uninitialized-memory shadow statement).
    pub init: Option<Init>,
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Stable identity within the program.
    pub id: NodeId,
    /// Source position (assigned by relocation).
    pub loc: Loc,
    /// The statement itself.
    pub kind: StmtKind,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local declaration.
    Decl(Decl),
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`.
    If(Expr, Block, Option<Block>),
    /// `while (cond) { .. }`.
    While(Expr, Block),
    /// `for (init; cond; step) { .. }` — init is a declaration or an
    /// expression statement; all three clauses are optional.
    For {
        /// Loop initializer.
        init: Option<Box<Stmt>>,
        /// Loop condition; absent means `1`.
        cond: Option<Expr>,
        /// Loop step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `return expr;` / `return;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested block — an inner scope. Scope boundaries matter: the
    /// use-after-scope shadow statement leaks an inner-scope address past the
    /// closing brace (paper Table 1 row 4, Figs. 8 and 12c).
    Block(Block),
}

impl Stmt {
    /// Creates a statement with dummy id and unknown location.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt { id: NodeId::DUMMY, loc: Loc::UNKNOWN, kind }
    }
}

/// A `{ ... }` block; establishes a scope.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Block {
        Block { stmts: Vec::new() }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name; `main` is the entry point.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters in order.
    pub params: Vec<(String, Type)>,
    /// Body.
    pub body: Block,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Struct definitions, referenced by index from [`Type::Struct`].
    pub structs: Vec<StructDef>,
    /// Global variable declarations, in order.
    pub globals: Vec<Decl>,
    /// Function definitions; execution starts at `main`.
    pub functions: Vec<Function>,
    /// Next unassigned [`NodeId`]; see [`Program::fresh_id`].
    pub next_id: u32,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program { structs: Vec::new(), globals: Vec::new(), functions: Vec::new(), next_id: 1 }
    }

    /// Mints a fresh node id, unique within this program.
    pub fn fresh_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Returns the function named `name`, if any.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable access to the function named `name`.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Returns the index of the struct with tag `name`.
    pub fn struct_index(&self, name: &str) -> Option<usize> {
        self.structs.iter().position(|s| s.name == name)
    }

    /// Walks the whole tree and assigns fresh ids to every node whose id is
    /// [`NodeId::DUMMY`], leaving already-assigned ids untouched.
    pub fn assign_ids(&mut self) {
        let mut next = self.next_id;
        {
            let mut assign = |id: &mut NodeId| {
                if *id == NodeId::DUMMY {
                    *id = NodeId(next);
                    next += 1;
                }
            };
            for g in &mut self.globals {
                if let Some(init) = &mut g.init {
                    assign_init(init, &mut assign);
                }
            }
            for f in &mut self.functions {
                assign_block(&mut f.body, &mut assign);
            }
        }
        self.next_id = next;
    }
}

fn assign_init(init: &mut Init, assign: &mut impl FnMut(&mut NodeId)) {
    match init {
        Init::Expr(e) => assign_expr(e, assign),
        Init::List(items) => {
            for it in items {
                assign_init(it, assign);
            }
        }
    }
}

fn assign_expr(e: &mut Expr, assign: &mut impl FnMut(&mut NodeId)) {
    assign(&mut e.id);
    match &mut e.kind {
        ExprKind::IntLit(..) | ExprKind::Var(_) => {}
        ExprKind::Unary(_, a)
        | ExprKind::AddrOf(a)
        | ExprKind::Deref(a)
        | ExprKind::Cast(_, a)
        | ExprKind::PreInc(a)
        | ExprKind::PreDec(a)
        | ExprKind::Member(a, _)
        | ExprKind::Arrow(a, _) => assign_expr(a, assign),
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(a, b)
        | ExprKind::CompoundAssign(_, a, b)
        | ExprKind::Index(a, b) => {
            assign_expr(a, assign);
            assign_expr(b, assign);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                assign_expr(a, assign);
            }
        }
        ExprKind::Cond(c, t, f) => {
            assign_expr(c, assign);
            assign_expr(t, assign);
            assign_expr(f, assign);
        }
    }
}

fn assign_stmt(s: &mut Stmt, assign: &mut impl FnMut(&mut NodeId)) {
    assign(&mut s.id);
    match &mut s.kind {
        StmtKind::Decl(d) => {
            if let Some(init) = &mut d.init {
                assign_init(init, assign);
            }
        }
        StmtKind::Expr(e) => assign_expr(e, assign),
        StmtKind::If(c, t, f) => {
            assign_expr(c, assign);
            assign_block(t, assign);
            if let Some(f) = f {
                assign_block(f, assign);
            }
        }
        StmtKind::While(c, b) => {
            assign_expr(c, assign);
            assign_block(b, assign);
        }
        StmtKind::For { init, cond, step, body } => {
            if let Some(i) = init {
                assign_stmt(i, assign);
            }
            if let Some(c) = cond {
                assign_expr(c, assign);
            }
            if let Some(st) = step {
                assign_expr(st, assign);
            }
            assign_block(body, assign);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                assign_expr(e, assign);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => assign_block(b, assign),
    }
}

fn assign_block(b: &mut Block, assign: &mut impl FnMut(&mut NodeId)) {
    for s in &mut b.stmts {
        assign_stmt(s, assign);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique() {
        let mut p = Program::new();
        let a = p.fresh_id();
        let b = p.fresh_id();
        assert_ne!(a, b);
    }

    #[test]
    fn assign_ids_fills_dummies_only() {
        let mut p = Program::new();
        let fixed = p.fresh_id();
        let mut e = Expr::new(ExprKind::Binary(
            BinOp::Add,
            Box::new(Expr::new(ExprKind::IntLit(1, IntType::INT))),
            Box::new(Expr::new(ExprKind::IntLit(2, IntType::INT))),
        ));
        e.id = fixed;
        p.functions.push(Function {
            name: "main".into(),
            ret: Type::int(),
            params: vec![],
            body: Block { stmts: vec![Stmt::new(StmtKind::Expr(e))] },
        });
        p.assign_ids();
        let f = p.function("main").unwrap();
        let stmt = &f.body.stmts[0];
        assert_ne!(stmt.id, NodeId::DUMMY);
        if let StmtKind::Expr(e) = &stmt.kind {
            assert_eq!(e.id, fixed);
            if let ExprKind::Binary(_, a, b) = &e.kind {
                assert_ne!(a.id, NodeId::DUMMY);
                assert_ne!(b.id, NodeId::DUMMY);
                assert_ne!(a.id, b.id);
            } else {
                panic!("shape");
            }
        } else {
            panic!("shape");
        }
    }

    #[test]
    fn lvalue_classification() {
        let v = Expr::new(ExprKind::Var("x".into()));
        assert!(v.is_lvalue());
        let lit = Expr::new(ExprKind::IntLit(3, IntType::INT));
        assert!(!lit.is_lvalue());
        let deref = Expr::new(ExprKind::Deref(Box::new(Expr::new(ExprKind::Var("p".into())))));
        assert!(deref.is_lvalue());
    }

    #[test]
    fn binop_classes() {
        assert!(BinOp::Add.is_arith());
        assert!(!BinOp::Shl.is_arith());
        assert!(BinOp::Shl.is_shift());
        assert!(BinOp::Eq.is_comparison());
        assert_eq!(BinOp::Shr.symbol(), ">>");
    }
}
