//! `ubfuzz-minic` — the C-subset language substrate of the UBfuzz reproduction.
//!
//! The UBfuzz paper (ASPLOS 2024) generates and mutates C programs. This crate
//! provides everything the rest of the workspace needs to treat such programs
//! as first-class values:
//!
//! * an abstract syntax tree ([`ast`]) in which every statement and expression
//!   carries a [`Loc`] — the `(line, offset)` pair that the crash-site mapping
//!   oracle (paper §3.3, Algorithm 2) keys on;
//! * a [`lexer`] and recursive-descent [`parser`] for the subset;
//! * a canonical [`pretty`]-printer which can *relocate* a program: assign
//!   fresh `(line, offset)` positions in printing order, exactly like writing
//!   the mutated source to a file and compiling it with `-g`;
//! * a permissive C-style type checker ([`typeck`]) that produces per-node
//!   type information used by the UB generator's expression matcher;
//! * visitor traits ([`visit`]) for analyses and in-place mutation.
//!
//! The subset covers what the paper's experiments exercise: `char`/`short`/
//! `int`/`long` in both signednesses, pointers (including pointer-to-pointer),
//! arrays, structs, the full integer operator set, control flow
//! (`if`/`while`/`for`/blocks), functions, and the three builtins `malloc`,
//! `free` and `print_value` (the checksum sink that makes generated programs
//! closed and observable, in the style of Csmith).
//!
//! # Example
//!
//! ```
//! use ubfuzz_minic::parse;
//!
//! let src = r#"
//!     int g[3] = {1, 2, 3};
//!     int main(void) {
//!         int s = 0;
//!         for (int i = 0; i < 3; i = i + 1) { s = s + g[i]; }
//!         print_value(s);
//!         return 0;
//!     }
//! "#;
//! let program = parse(src).expect("valid program");
//! assert_eq!(program.functions.len(), 1);
//! ```

pub mod ast;
pub mod build;
pub mod lexer;
pub mod loc;
pub mod parser;
pub mod pretty;
pub mod typeck;
pub mod types;
pub mod ubkind;
pub mod visit;

pub use ast::{Block, Decl, Expr, ExprKind, Function, Init, Program, Stmt, StmtKind};
pub use loc::{Loc, NodeId};
pub use parser::{parse, ParseError};
pub use pretty::{print, relocate};
pub use typeck::{typecheck, TypeError, TypeMap};
pub use types::{IntType, IntWidth, StructDef, Type};
pub use ubkind::UbKind;
