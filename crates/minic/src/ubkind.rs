//! The undefined-behavior taxonomy of the paper's Table 1.
//!
//! This lives in the language crate because every subsystem shares it: the
//! interpreter classifies detected UB, the UB generator targets a kind, the
//! sanitizer passes declare which kinds they check (Table 2), and the defect
//! registry records which kind each injected bug misses.

use std::fmt;

/// The UB kinds of the paper's Table 1, plus `InvalidFree` (double/invalid `free`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UbKind {
    /// Out-of-bounds access through a syntactic array subscript `a[x]`.
    BufOverflowArray,
    /// Out-of-bounds access through a pointer dereference `*p`.
    BufOverflowPtr,
    /// Access to a heap object after `free`.
    UseAfterFree,
    /// Access to a stack object whose scope has ended.
    UseAfterScope,
    /// Dereference of a null pointer.
    NullDeref,
    /// Signed integer overflow in `+ - * / %` (includes `INT_MIN / -1`).
    IntOverflow,
    /// Shift amount negative or ≥ bit-width.
    ShiftOverflow,
    /// Division or remainder by zero.
    DivByZero,
    /// Use of an uninitialized value in a control or unsafe context.
    UninitUse,
    /// Invalid or double `free`.
    InvalidFree,
    /// Subtraction of pointers into different objects (CWE-469) — the
    /// paper's §3.2.4 extension example. No sanitizer detects it, which is
    /// exactly why the paper left it out; the generator and the reference
    /// interpreter here support it to demonstrate the framework extends.
    PtrDiff,
}

impl UbKind {
    /// All kinds the UBfuzz generator can target (Table 1), in paper order.
    pub const GENERATABLE: [UbKind; 9] = [
        UbKind::BufOverflowArray,
        UbKind::BufOverflowPtr,
        UbKind::UseAfterFree,
        UbKind::UseAfterScope,
        UbKind::NullDeref,
        UbKind::IntOverflow,
        UbKind::ShiftOverflow,
        UbKind::DivByZero,
        UbKind::UninitUse,
    ];

    /// Extension kinds beyond the paper's Table 1 (§3.2.4 discussion):
    /// generatable and interpreter-detected, but unsupported by every
    /// sanitizer — kept out of [`UbKind::GENERATABLE`] so the paper's
    /// table shapes are unaffected unless explicitly requested.
    pub const EXTENSIONS: [UbKind; 1] = [UbKind::PtrDiff];

    /// Short stable name used in reports and tables.
    pub fn name(self) -> &'static str {
        match self {
            UbKind::BufOverflowArray => "BufOverflow(Array)",
            UbKind::BufOverflowPtr => "BufOverflow(Pointer)",
            UbKind::UseAfterFree => "UseAfterFree",
            UbKind::UseAfterScope => "UseAfterScope",
            UbKind::NullDeref => "NullPtrDeref",
            UbKind::IntOverflow => "IntegerOverflow",
            UbKind::ShiftOverflow => "ShiftOverflow",
            UbKind::DivByZero => "DivideByZero",
            UbKind::UninitUse => "UseOfUninit",
            UbKind::InvalidFree => "InvalidFree",
            UbKind::PtrDiff => "PtrSubDiffObj",
        }
    }
}

impl fmt::Display for UbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_stable() {
        assert_eq!(UbKind::GENERATABLE.len(), 9);
        assert_eq!(UbKind::BufOverflowPtr.name(), "BufOverflow(Pointer)");
        assert_eq!(UbKind::DivByZero.to_string(), "DivideByZero");
    }
}
