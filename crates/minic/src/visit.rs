//! AST traversal and surgical editing.
//!
//! Two visitor traits ([`Visit`], [`VisitMut`]) with default walkers, plus the
//! editing primitives the UB generator needs for shadow-statement insertion
//! (paper §3.2.3): inserting statements *immediately before* an anchor
//! statement, and rewriting a matched expression in place.

use crate::ast::*;
use crate::loc::NodeId;

/// Immutable traversal with default depth-first walking.
pub trait Visit {
    /// Called for every expression (pre-order).
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
    /// Called for every statement (pre-order).
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    /// Called for every block.
    fn visit_block(&mut self, b: &Block) {
        walk_block(self, b);
    }
    /// Called for every function.
    fn visit_function(&mut self, f: &Function) {
        walk_function(self, f);
    }
    /// Called once per program.
    fn visit_program(&mut self, p: &Program) {
        walk_program(self, p);
    }
}

/// Default walker for expressions.
pub fn walk_expr<V: Visit + ?Sized>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::IntLit(..) | ExprKind::Var(_) => {}
        ExprKind::Unary(_, a)
        | ExprKind::AddrOf(a)
        | ExprKind::Deref(a)
        | ExprKind::Cast(_, a)
        | ExprKind::PreInc(a)
        | ExprKind::PreDec(a)
        | ExprKind::Member(a, _)
        | ExprKind::Arrow(a, _) => v.visit_expr(a),
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(a, b)
        | ExprKind::CompoundAssign(_, a, b)
        | ExprKind::Index(a, b) => {
            v.visit_expr(a);
            v.visit_expr(b);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Cond(c, t, f) => {
            v.visit_expr(c);
            v.visit_expr(t);
            v.visit_expr(f);
        }
    }
}

/// Default walker for statements.
pub fn walk_stmt<V: Visit + ?Sized>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Decl(d) => {
            if let Some(init) = &d.init {
                walk_init(v, init);
            }
        }
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::If(c, t, f) => {
            v.visit_expr(c);
            v.visit_block(t);
            if let Some(f) = f {
                v.visit_block(f);
            }
        }
        StmtKind::While(c, b) => {
            v.visit_expr(c);
            v.visit_block(b);
        }
        StmtKind::For { init, cond, step, body } => {
            if let Some(i) = init {
                v.visit_stmt(i);
            }
            if let Some(c) = cond {
                v.visit_expr(c);
            }
            if let Some(st) = step {
                v.visit_expr(st);
            }
            v.visit_block(body);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => v.visit_block(b),
    }
}

fn walk_init<V: Visit + ?Sized>(v: &mut V, init: &Init) {
    match init {
        Init::Expr(e) => v.visit_expr(e),
        Init::List(items) => {
            for it in items {
                walk_init(v, it);
            }
        }
    }
}

/// Default walker for blocks.
pub fn walk_block<V: Visit + ?Sized>(v: &mut V, b: &Block) {
    for s in &b.stmts {
        v.visit_stmt(s);
    }
}

/// Default walker for functions.
pub fn walk_function<V: Visit + ?Sized>(v: &mut V, f: &Function) {
    v.visit_block(&f.body);
}

/// Default walker for programs (globals' initializers, then functions).
pub fn walk_program<V: Visit + ?Sized>(v: &mut V, p: &Program) {
    for g in &p.globals {
        if let Some(init) = &g.init {
            walk_init(v, init);
        }
    }
    for f in &p.functions {
        v.visit_function(f);
    }
}

/// Mutable traversal with default depth-first walking.
pub trait VisitMut {
    /// Called for every expression (pre-order).
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e);
    }
    /// Called for every statement (pre-order).
    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        walk_stmt_mut(self, s);
    }
    /// Called for every block.
    fn visit_block_mut(&mut self, b: &mut Block) {
        walk_block_mut(self, b);
    }
    /// Called once per program.
    fn visit_program_mut(&mut self, p: &mut Program) {
        walk_program_mut(self, p);
    }
}

/// Default mutable walker for expressions.
pub fn walk_expr_mut<V: VisitMut + ?Sized>(v: &mut V, e: &mut Expr) {
    match &mut e.kind {
        ExprKind::IntLit(..) | ExprKind::Var(_) => {}
        ExprKind::Unary(_, a)
        | ExprKind::AddrOf(a)
        | ExprKind::Deref(a)
        | ExprKind::Cast(_, a)
        | ExprKind::PreInc(a)
        | ExprKind::PreDec(a)
        | ExprKind::Member(a, _)
        | ExprKind::Arrow(a, _) => v.visit_expr_mut(a),
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(a, b)
        | ExprKind::CompoundAssign(_, a, b)
        | ExprKind::Index(a, b) => {
            v.visit_expr_mut(a);
            v.visit_expr_mut(b);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                v.visit_expr_mut(a);
            }
        }
        ExprKind::Cond(c, t, f) => {
            v.visit_expr_mut(c);
            v.visit_expr_mut(t);
            v.visit_expr_mut(f);
        }
    }
}

/// Default mutable walker for statements.
pub fn walk_stmt_mut<V: VisitMut + ?Sized>(v: &mut V, s: &mut Stmt) {
    match &mut s.kind {
        StmtKind::Decl(d) => {
            if let Some(init) = &mut d.init {
                walk_init_mut(v, init);
            }
        }
        StmtKind::Expr(e) => v.visit_expr_mut(e),
        StmtKind::If(c, t, f) => {
            v.visit_expr_mut(c);
            v.visit_block_mut(t);
            if let Some(f) = f {
                v.visit_block_mut(f);
            }
        }
        StmtKind::While(c, b) => {
            v.visit_expr_mut(c);
            v.visit_block_mut(b);
        }
        StmtKind::For { init, cond, step, body } => {
            if let Some(i) = init {
                v.visit_stmt_mut(i);
            }
            if let Some(c) = cond {
                v.visit_expr_mut(c);
            }
            if let Some(st) = step {
                v.visit_expr_mut(st);
            }
            v.visit_block_mut(body);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr_mut(e);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => v.visit_block_mut(b),
    }
}

fn walk_init_mut<V: VisitMut + ?Sized>(v: &mut V, init: &mut Init) {
    match init {
        Init::Expr(e) => v.visit_expr_mut(e),
        Init::List(items) => {
            for it in items {
                walk_init_mut(v, it);
            }
        }
    }
}

/// Default mutable walker for blocks.
pub fn walk_block_mut<V: VisitMut + ?Sized>(v: &mut V, b: &mut Block) {
    for s in &mut b.stmts {
        v.visit_stmt_mut(s);
    }
}

/// Default mutable walker for programs.
pub fn walk_program_mut<V: VisitMut + ?Sized>(v: &mut V, p: &mut Program) {
    let mut globals = std::mem::take(&mut p.globals);
    for g in &mut globals {
        if let Some(init) = &mut g.init {
            walk_init_mut(v, init);
        }
    }
    p.globals = globals;
    let mut functions = std::mem::take(&mut p.functions);
    for f in &mut functions {
        v.visit_block_mut(&mut f.body);
    }
    p.functions = functions;
}

/// Calls `f` for every expression in the program (pre-order).
pub fn for_each_expr(p: &Program, mut f: impl FnMut(&Expr)) {
    struct V<F>(F);
    impl<F: FnMut(&Expr)> Visit for V<F> {
        fn visit_expr(&mut self, e: &Expr) {
            (self.0)(e);
            walk_expr(self, e);
        }
    }
    V(&mut f).visit_program(p);
}

/// Calls `f` for every statement in the program (pre-order).
pub fn for_each_stmt(p: &Program, mut f: impl FnMut(&Stmt)) {
    struct V<F>(F);
    impl<F: FnMut(&Stmt)> Visit for V<F> {
        fn visit_stmt(&mut self, s: &Stmt) {
            (self.0)(s);
            walk_stmt(self, s);
        }
    }
    V(&mut f).visit_program(p);
}

/// Inserts `new_stmts` immediately before the statement with id `anchor`.
///
/// This is the paper's `Insert(P, Δ(expr))`: the shadow statement is placed
/// right before the statement containing the matched expression. Searches
/// every block (including `for` bodies and nested scopes). Returns `true` if
/// the anchor was found.
pub fn insert_before_stmt(p: &mut Program, anchor: NodeId, new_stmts: Vec<Stmt>) -> bool {
    struct Inserter {
        anchor: NodeId,
        stmts: Option<Vec<Stmt>>,
    }
    impl VisitMut for Inserter {
        fn visit_block_mut(&mut self, b: &mut Block) {
            if let Some(pos) = b.stmts.iter().position(|s| s.id == self.anchor) {
                if let Some(stmts) = self.stmts.take() {
                    b.stmts.splice(pos..pos, stmts);
                    return;
                }
            }
            walk_block_mut(self, b);
        }
    }
    let mut ins = Inserter { anchor, stmts: Some(new_stmts) };
    ins.visit_program_mut(p);
    ins.stmts.is_none()
}

/// Appends `new_stmts` at the end of the block that directly contains the
/// statement with id `within`. Used by the use-after-scope synthesizer, which
/// leaks an inner-scope address just before the scope closes.
pub fn append_to_enclosing_block(p: &mut Program, within: NodeId, new_stmts: Vec<Stmt>) -> bool {
    struct Appender {
        within: NodeId,
        stmts: Option<Vec<Stmt>>,
    }
    impl VisitMut for Appender {
        fn visit_block_mut(&mut self, b: &mut Block) {
            if b.stmts.iter().any(|s| s.id == self.within) {
                if let Some(stmts) = self.stmts.take() {
                    b.stmts.extend(stmts);
                    return;
                }
            }
            walk_block_mut(self, b);
        }
    }
    let mut app = Appender { within, stmts: Some(new_stmts) };
    app.visit_program_mut(p);
    app.stmts.is_none()
}

/// Replaces the expression with id `target` by `replacement` (which keeps the
/// target's location but its own structure). Returns `true` on success.
pub fn replace_expr(p: &mut Program, target: NodeId, replacement: Expr) -> bool {
    struct Replacer {
        target: NodeId,
        replacement: Option<Expr>,
    }
    impl VisitMut for Replacer {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            if e.id == self.target {
                if let Some(mut r) = self.replacement.take() {
                    r.loc = e.loc;
                    *e = r;
                    return;
                }
            }
            walk_expr_mut(self, e);
        }
    }
    let mut rep = Replacer { target, replacement: Some(replacement) };
    rep.visit_program_mut(p);
    rep.replacement.is_none()
}

/// Finds the statement id of the statement that (transitively) contains the
/// expression with id `expr_id`, along with the containing function name.
pub fn enclosing_stmt(p: &Program, expr_id: NodeId) -> Option<(NodeId, String)> {
    struct Finder {
        expr_id: NodeId,
        current_stmt: Vec<NodeId>,
        current_fn: String,
        found: Option<(NodeId, String)>,
    }
    impl Visit for Finder {
        fn visit_stmt(&mut self, s: &Stmt) {
            // Only top-of-block statements are insertion anchors; nested
            // statements (e.g. a `for` initializer) report their parent.
            self.current_stmt.push(s.id);
            walk_stmt(self, s);
            self.current_stmt.pop();
        }
        fn visit_expr(&mut self, e: &Expr) {
            if e.id == self.expr_id && self.found.is_none() {
                if let Some(&top) = self.current_stmt.first() {
                    self.found = Some((top, self.current_fn.clone()));
                }
            }
            walk_expr(self, e);
        }
    }
    let mut finder = Finder {
        expr_id,
        current_stmt: Vec::new(),
        current_fn: String::new(),
        found: None,
    };
    for f in &p.functions {
        finder.current_fn = f.name.clone();
        finder.visit_block(&f.body);
        if finder.found.is_some() {
            break;
        }
    }
    finder.found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::types::Type;

    fn sample() -> Program {
        let mut p = Program::new();
        p.functions.push(function(
            "main",
            Type::int(),
            vec![],
            vec![
                decl_stmt("x", Type::int(), Some(lit(1))),
                expr_stmt(assign(var("x"), add(var("x"), lit(2)))),
                ret(Some(var("x"))),
            ],
        ));
        p.assign_ids();
        p
    }

    #[test]
    fn for_each_expr_counts() {
        let p = sample();
        let mut n = 0;
        for_each_expr(&p, |_| n += 1);
        // lit(1); x = x + 2 has 5 exprs (assign, x, add, x, 2); return x has 1.
        assert_eq!(n, 7);
    }

    #[test]
    fn insert_before_works() {
        let mut p = sample();
        let anchor = p.function("main").unwrap().body.stmts[1].id;
        let mut s = expr_stmt(assign(var("x"), lit(9)));
        s.id = p.fresh_id();
        assert!(insert_before_stmt(&mut p, anchor, vec![s]));
        let body = &p.function("main").unwrap().body;
        assert_eq!(body.stmts.len(), 4);
        assert!(matches!(body.stmts[1].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn insert_before_missing_anchor_fails() {
        let mut p = sample();
        assert!(!insert_before_stmt(&mut p, NodeId(9999), vec![expr_stmt(lit(0))]));
    }

    #[test]
    fn replace_expr_keeps_loc() {
        let mut p = sample();
        // find the `2` literal
        let mut target = None;
        for_each_expr(&p, |e| {
            if matches!(e.kind, ExprKind::IntLit(2, _)) {
                target = Some(e.id);
            }
        });
        let target = target.unwrap();
        assert!(replace_expr(&mut p, target, lit(42)));
        let mut seen = false;
        for_each_expr(&p, |e| {
            if matches!(e.kind, ExprKind::IntLit(42, _)) {
                seen = true;
            }
        });
        assert!(seen);
    }

    #[test]
    fn enclosing_stmt_finds_top_level_anchor() {
        let p = sample();
        let mut add_id = None;
        for_each_expr(&p, |e| {
            if matches!(e.kind, ExprKind::Binary(BinOp::Add, ..)) {
                add_id = Some(e.id);
            }
        });
        let (stmt_id, fname) = enclosing_stmt(&p, add_id.unwrap()).unwrap();
        assert_eq!(fname, "main");
        assert_eq!(stmt_id, p.function("main").unwrap().body.stmts[1].id);
    }

    #[test]
    fn append_to_enclosing_block_appends() {
        let mut p = sample();
        let first = p.function("main").unwrap().body.stmts[0].id;
        assert!(append_to_enclosing_block(&mut p, first, vec![expr_stmt(lit(5))]));
        assert_eq!(p.function("main").unwrap().body.stmts.len(), 4);
    }
}
