//! Concise AST constructors.
//!
//! The generators (seed generator, UB generator, baselines, test suites)
//! build a lot of syntax; these helpers keep that code readable. All nodes
//! are created with [`crate::NodeId::DUMMY`] — callers run
//! [`crate::Program::assign_ids`] once the tree is assembled.
//!
//! ```
//! use ubfuzz_minic::build::*;
//! use ubfuzz_minic::types::Type;
//!
//! // a[i] = a[i] + 1;
//! let stmt = expr_stmt(assign(
//!     index(var("a"), var("i")),
//!     add(index(var("a"), var("i")), lit(1)),
//! ));
//! ```

use crate::ast::*;
use crate::types::{IntType, Type};

/// `int` literal.
pub fn lit(v: i64) -> Expr {
    Expr::new(ExprKind::IntLit(v as i128, IntType::INT))
}

/// Literal of an explicit integer type.
pub fn lit_ty(v: i128, ty: IntType) -> Expr {
    Expr::new(ExprKind::IntLit(v, ty))
}

/// Variable reference.
pub fn var(name: &str) -> Expr {
    Expr::new(ExprKind::Var(name.to_string()))
}

/// Binary operation.
pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    Expr::new(ExprKind::Binary(op, Box::new(a), Box::new(b)))
}

/// `a + b`.
pub fn add(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Add, a, b)
}

/// `a - b`.
pub fn sub(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Sub, a, b)
}

/// `a * b`.
pub fn mul(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Mul, a, b)
}

/// `a / b`.
pub fn div(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Div, a, b)
}

/// `a < b`.
pub fn lt(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Lt, a, b)
}

/// `a == b`.
pub fn eq(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Eq, a, b)
}

/// Unary operation.
pub fn un(op: UnOp, a: Expr) -> Expr {
    Expr::new(ExprKind::Unary(op, Box::new(a)))
}

/// `lhs = rhs`.
pub fn assign(lhs: Expr, rhs: Expr) -> Expr {
    Expr::new(ExprKind::Assign(Box::new(lhs), Box::new(rhs)))
}

/// `++lvalue`.
pub fn pre_inc(lvalue: Expr) -> Expr {
    Expr::new(ExprKind::PreInc(Box::new(lvalue)))
}

/// `base[idx]`.
pub fn index(base: Expr, idx: Expr) -> Expr {
    Expr::new(ExprKind::Index(Box::new(base), Box::new(idx)))
}

/// `s.field`.
pub fn member(base: Expr, field: &str) -> Expr {
    Expr::new(ExprKind::Member(Box::new(base), field.to_string()))
}

/// `p->field`.
pub fn arrow(base: Expr, field: &str) -> Expr {
    Expr::new(ExprKind::Arrow(Box::new(base), field.to_string()))
}

/// `&lvalue`.
pub fn addr_of(lvalue: Expr) -> Expr {
    Expr::new(ExprKind::AddrOf(Box::new(lvalue)))
}

/// `*ptr`.
pub fn deref(ptr: Expr) -> Expr {
    Expr::new(ExprKind::Deref(Box::new(ptr)))
}

/// `(ty)expr`.
pub fn cast(ty: Type, e: Expr) -> Expr {
    Expr::new(ExprKind::Cast(ty, Box::new(e)))
}

/// Function call.
pub fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::new(ExprKind::Call(name.to_string(), args))
}

/// `cond ? t : f`.
pub fn cond(c: Expr, t: Expr, f: Expr) -> Expr {
    Expr::new(ExprKind::Cond(Box::new(c), Box::new(t), Box::new(f)))
}

/// Expression statement.
pub fn expr_stmt(e: Expr) -> Stmt {
    Stmt::new(StmtKind::Expr(e))
}

/// Local declaration statement.
pub fn decl_stmt(name: &str, ty: Type, init: Option<Expr>) -> Stmt {
    Stmt::new(StmtKind::Decl(Decl {
        name: name.to_string(),
        ty,
        init: init.map(Init::Expr),
    }))
}

/// Local array/struct declaration with a list initializer.
pub fn decl_list_stmt(name: &str, ty: Type, items: Vec<Expr>) -> Stmt {
    Stmt::new(StmtKind::Decl(Decl {
        name: name.to_string(),
        ty,
        init: Some(Init::List(items.into_iter().map(Init::Expr).collect())),
    }))
}

/// `return e;`.
pub fn ret(e: Option<Expr>) -> Stmt {
    Stmt::new(StmtKind::Return(e))
}

/// `if (c) { then } else { els }`.
pub fn if_stmt(c: Expr, then: Vec<Stmt>, els: Option<Vec<Stmt>>) -> Stmt {
    Stmt::new(StmtKind::If(c, Block { stmts: then }, els.map(|s| Block { stmts: s })))
}

/// `while (c) { body }`.
pub fn while_stmt(c: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::new(StmtKind::While(c, Block { stmts: body }))
}

/// A nested `{ ... }` scope.
pub fn block_stmt(body: Vec<Stmt>) -> Stmt {
    Stmt::new(StmtKind::Block(Block { stmts: body }))
}

/// The canonical bounded loop `for (int i = from; i < to; i = i + step)`,
/// which the seed generator emits to guarantee termination.
pub fn counted_for(i: &str, from: i64, to: i64, step: i64, body: Vec<Stmt>) -> Stmt {
    Stmt::new(StmtKind::For {
        init: Some(Box::new(decl_stmt(i, Type::int(), Some(lit(from))))),
        cond: Some(lt(var(i), lit(to))),
        step: Some(assign(var(i), add(var(i), lit(step)))),
        body: Block { stmts: body },
    })
}

/// A global declaration.
pub fn global(name: &str, ty: Type, init: Option<Init>) -> Decl {
    Decl { name: name.to_string(), ty, init }
}

/// A function definition.
pub fn function(name: &str, ret_ty: Type, params: Vec<(String, Type)>, body: Vec<Stmt>) -> Function {
    Function { name: name.to_string(), ret: ret_ty, params, body: Block { stmts: body } }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = assign(index(var("a"), var("i")), add(lit(1), lit(2)));
        match e.kind {
            ExprKind::Assign(lhs, rhs) => {
                assert!(matches!(lhs.kind, ExprKind::Index(..)));
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Add, ..)));
            }
            _ => panic!("shape"),
        }
    }

    #[test]
    fn counted_for_shape() {
        let s = counted_for("i", 0, 10, 2, vec![]);
        match s.kind {
            StmtKind::For { init, cond, step, .. } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(step.is_some());
            }
            _ => panic!("shape"),
        }
    }
}
