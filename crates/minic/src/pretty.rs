//! Canonical pretty-printer and location (re-)assignment.
//!
//! [`print()`] renders a program as C text in a deterministic layout (one
//! statement per line, fully parenthesized expressions). [`relocate`] does
//! the same *and* stores each node's `(line, offset)` back into the AST —
//! the analogue of writing the mutated program to disk and compiling it with
//! `-g`, so that every downstream component (compilers, the interpreter, the
//! crash-site oracle) agrees on source coordinates.

use crate::ast::*;
use crate::loc::{Loc, NodeId};
use crate::types::{IntWidth, Type};
use crate::visit::{walk_expr_mut, walk_stmt_mut, VisitMut};
use std::collections::HashMap;

/// Renders `p` as C source text.
pub fn print(p: &Program) -> String {
    let mut pr = Printer::new(p);
    pr.program(p);
    pr.out
}

/// Renders `p` as C source text and assigns every statement and expression
/// its `(line, offset)` position in that text.
pub fn relocate(p: &mut Program) -> String {
    let (text, locs) = {
        let mut pr = Printer::new(p);
        pr.record = true;
        pr.program(p);
        (pr.out, pr.locs)
    };
    struct Apply {
        locs: HashMap<NodeId, Loc>,
    }
    impl VisitMut for Apply {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            if let Some(l) = self.locs.get(&e.id) {
                e.loc = *l;
            }
            walk_expr_mut(self, e);
        }
        fn visit_stmt_mut(&mut self, s: &mut Stmt) {
            if let Some(l) = self.locs.get(&s.id) {
                s.loc = *l;
            }
            walk_stmt_mut(self, s);
        }
    }
    Apply { locs }.visit_program_mut(p);
    text
}

struct Printer<'p> {
    out: String,
    line: u32,
    col: u32,
    indent: usize,
    record: bool,
    locs: HashMap<NodeId, Loc>,
    program: &'p Program,
}

impl<'p> Printer<'p> {
    fn new(program: &'p Program) -> Printer<'p> {
        Printer {
            out: String::new(),
            line: 1,
            col: 0,
            indent: 0,
            record: false,
            locs: HashMap::new(),
            program,
        }
    }

    fn push(&mut self, s: &str) {
        for ch in s.chars() {
            if ch == '\n' {
                self.line += 1;
                self.col = 0;
            } else {
                self.col += 1;
            }
        }
        self.out.push_str(s);
    }

    fn newline(&mut self) {
        self.push("\n");
        let pad = "    ".repeat(self.indent);
        self.push(&pad);
    }

    fn here(&self) -> Loc {
        Loc::new(self.line, self.col)
    }

    fn mark(&mut self, id: NodeId) {
        if self.record {
            self.locs.insert(id, self.here());
        }
    }

    fn program(&mut self, p: &Program) {
        for s in &p.structs {
            self.push(&format!("struct {} {{ ", s.name));
            for (name, ty) in &s.fields {
                self.decl_text(name, ty);
                self.push("; ");
            }
            self.push("};");
            self.newline();
        }
        for g in &p.globals {
            self.decl_text(&g.name, &g.ty);
            if let Some(init) = &g.init {
                self.push(" = ");
                self.init(init);
            }
            self.push(";");
            self.newline();
        }
        for f in &p.functions {
            self.function(f);
        }
    }

    fn function(&mut self, f: &Function) {
        self.push(&format!("{} {}(", type_prefix(&f.ret), f.name));
        if f.params.is_empty() {
            self.push("void");
        } else {
            for (i, (name, ty)) in f.params.iter().enumerate() {
                if i > 0 {
                    self.push(", ");
                }
                self.decl_text(name, ty);
            }
        }
        self.push(") {");
        self.indent += 1;
        for s in &f.body.stmts {
            self.newline();
            self.stmt(s);
        }
        self.indent -= 1;
        self.newline();
        self.push("}");
        self.newline();
    }

    /// Emits `int *p`, `int a[3]`, `struct S s` etc.
    fn decl_text(&mut self, name: &str, ty: &Type) {
        let (base, mut stars, mut dims) = (base_of(ty), String::new(), String::new());
        let mut t = ty;
        // Peel arrays (outermost first) then pointers.
        while let Type::Array(elem, n) = t {
            dims.push_str(&format!("[{n}]"));
            t = elem;
        }
        while let Type::Ptr(inner) = t {
            stars.push('*');
            t = inner;
        }
        let _ = base;
        self.push(&format!("{} {stars}{name}{dims}", base_name(t, self.program)));
    }

    fn init(&mut self, init: &Init) {
        match init {
            Init::Expr(e) => self.expr(e, 0),
            Init::List(items) => {
                self.push("{");
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.init(it);
                }
                self.push("}");
            }
        }
    }

    fn block(&mut self, b: &Block) {
        self.push("{");
        self.indent += 1;
        for s in &b.stmts {
            self.newline();
            self.stmt(s);
        }
        self.indent -= 1;
        self.newline();
        self.push("}");
    }

    fn stmt(&mut self, s: &Stmt) {
        self.mark(s.id);
        match &s.kind {
            StmtKind::Decl(d) => {
                self.decl_text(&d.name, &d.ty);
                if let Some(init) = &d.init {
                    self.push(" = ");
                    self.init(init);
                }
                self.push(";");
            }
            StmtKind::Expr(e) => {
                self.expr(e, 0);
                self.push(";");
            }
            StmtKind::If(c, t, f) => {
                self.push("if (");
                self.expr(c, 0);
                self.push(") ");
                self.block(t);
                if let Some(f) = f {
                    self.push(" else ");
                    self.block(f);
                }
            }
            StmtKind::While(c, b) => {
                self.push("while (");
                self.expr(c, 0);
                self.push(") ");
                self.block(b);
            }
            StmtKind::For { init, cond, step, body } => {
                self.push("for (");
                match init {
                    Some(s) => {
                        // Print inline without the trailing newline handling.
                        self.mark(s.id);
                        match &s.kind {
                            StmtKind::Decl(d) => {
                                self.decl_text(&d.name, &d.ty);
                                if let Some(i) = &d.init {
                                    self.push(" = ");
                                    self.init(i);
                                }
                                self.push(";");
                            }
                            StmtKind::Expr(e) => {
                                self.expr(e, 0);
                                self.push(";");
                            }
                            _ => self.push(";"),
                        }
                    }
                    None => self.push(";"),
                }
                self.push(" ");
                if let Some(c) = cond {
                    self.expr(c, 0);
                }
                self.push("; ");
                if let Some(st) = step {
                    self.expr(st, 0);
                }
                self.push(") ");
                self.block(body);
            }
            StmtKind::Return(e) => {
                self.push("return");
                if let Some(e) = e {
                    self.push(" ");
                    self.expr(e, 0);
                }
                self.push(";");
            }
            StmtKind::Break => self.push("break;"),
            StmtKind::Continue => self.push("continue;"),
            StmtKind::Block(b) => self.block(b),
        }
    }

    /// `min_prec` 0 = statement/argument context (no parens needed).
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        let prec = precedence(&e.kind);
        let parens = prec < min_prec;
        if parens {
            self.push("(");
        }
        self.mark(e.id);
        match &e.kind {
            ExprKind::IntLit(v, ty) => {
                let suffix = match (ty.signed, ty.width) {
                    (false, IntWidth::W64) => "UL",
                    (false, _) => "U",
                    (true, IntWidth::W64) => "L",
                    _ => "",
                };
                if *v < 0 {
                    // C has no negative literals; parenthesized unary minus.
                    self.push(&format!("(-{}{suffix})", v.unsigned_abs()));
                } else {
                    self.push(&format!("{v}{suffix}"));
                }
            }
            ExprKind::Var(n) => self.push(n),
            ExprKind::Unary(op, a) => {
                self.push(match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                });
                self.expr(a, UNARY_PREC);
            }
            ExprKind::Binary(op, a, b) => {
                let p = precedence(&e.kind);
                self.expr(a, p);
                self.push(&format!(" {} ", op.symbol()));
                self.expr(b, p + 1);
            }
            ExprKind::Assign(l, r) => {
                self.expr(l, UNARY_PREC);
                self.push(" = ");
                self.expr(r, ASSIGN_PREC);
            }
            ExprKind::CompoundAssign(op, l, r) => {
                self.expr(l, UNARY_PREC);
                self.push(&format!(" {}= ", op.symbol()));
                self.expr(r, ASSIGN_PREC);
            }
            ExprKind::PreInc(a) => {
                self.push("++");
                self.expr(a, UNARY_PREC);
            }
            ExprKind::PreDec(a) => {
                self.push("--");
                self.expr(a, UNARY_PREC);
            }
            ExprKind::Index(a, i) => {
                self.expr(a, POSTFIX_PREC);
                self.push("[");
                self.expr(i, 0);
                self.push("]");
            }
            ExprKind::Member(a, f) => {
                self.expr(a, POSTFIX_PREC);
                self.push(&format!(".{f}"));
            }
            ExprKind::Arrow(a, f) => {
                self.expr(a, POSTFIX_PREC);
                self.push(&format!("->{f}"));
            }
            ExprKind::AddrOf(a) => {
                self.push("&");
                self.expr(a, UNARY_PREC);
            }
            ExprKind::Deref(a) => {
                self.push("*");
                self.expr(a, UNARY_PREC);
            }
            ExprKind::Cast(ty, a) => {
                self.push(&format!("({})", cast_text(ty, self.program)));
                self.expr(a, UNARY_PREC);
            }
            ExprKind::Call(name, args) => {
                self.push(name);
                self.push("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(a, ASSIGN_PREC);
                }
                self.push(")");
            }
            ExprKind::Cond(c, t, f) => {
                self.expr(c, COND_PREC + 1);
                self.push(" ? ");
                self.expr(t, 0);
                self.push(" : ");
                self.expr(f, COND_PREC);
            }
        }
        if parens {
            self.push(")");
        }
    }
}

const ASSIGN_PREC: u8 = 1;
const COND_PREC: u8 = 2;
const UNARY_PREC: u8 = 13;
const POSTFIX_PREC: u8 = 14;

fn precedence(kind: &ExprKind) -> u8 {
    match kind {
        ExprKind::Assign(..) | ExprKind::CompoundAssign(..) => ASSIGN_PREC,
        ExprKind::Cond(..) => COND_PREC,
        ExprKind::Binary(op, ..) => match op {
            BinOp::LogOr => 3,
            BinOp::LogAnd => 4,
            BinOp::BitOr => 5,
            BinOp::BitXor => 6,
            BinOp::BitAnd => 7,
            BinOp::Eq | BinOp::Ne => 8,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 9,
            BinOp::Shl | BinOp::Shr => 10,
            BinOp::Add | BinOp::Sub => 11,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 12,
        },
        ExprKind::Unary(..)
        | ExprKind::AddrOf(_)
        | ExprKind::Deref(_)
        | ExprKind::Cast(..)
        | ExprKind::PreInc(_)
        | ExprKind::PreDec(_) => UNARY_PREC,
        ExprKind::IntLit(..)
        | ExprKind::Var(_)
        | ExprKind::Index(..)
        | ExprKind::Member(..)
        | ExprKind::Arrow(..)
        | ExprKind::Call(..) => POSTFIX_PREC,
    }
}

fn base_of(ty: &Type) -> &Type {
    match ty {
        Type::Ptr(t) => base_of(t),
        Type::Array(t, _) => base_of(t),
        other => other,
    }
}

fn base_name(ty: &Type, program: &Program) -> String {
    match ty {
        Type::Void => "void".into(),
        Type::Int(it) => it.to_string(),
        Type::Struct(idx) => format!("struct {}", program.structs[*idx].name),
        Type::Ptr(_) | Type::Array(..) => unreachable!("peeled before base_name"),
    }
}

fn type_prefix(ty: &Type) -> String {
    match ty {
        Type::Void => "void".into(),
        Type::Int(it) => it.to_string(),
        Type::Ptr(inner) => format!("{}*", type_prefix(inner)),
        Type::Struct(_) => "struct".into(), // functions never return structs in the subset
        Type::Array(..) => unreachable!("functions cannot return arrays"),
    }
}

fn cast_text(ty: &Type, program: &Program) -> String {
    match ty {
        Type::Void => "void".into(),
        Type::Int(it) => it.to_string(),
        Type::Ptr(inner) => format!("{}*", cast_text(inner, program)),
        Type::Struct(idx) => format!("struct {}", program.structs[*idx].name),
        Type::Array(..) => "void*".into(), // casts to array types do not occur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) {
        let p1 = parse(src).unwrap();
        let t1 = print(&p1);
        let p2 = parse(&t1).unwrap_or_else(|e| panic!("reparse failed: {e}\n{t1}"));
        let t2 = print(&p2);
        assert_eq!(t1, t2, "printer not canonical for:\n{src}");
    }

    #[test]
    fn roundtrips_basic() {
        roundtrip("int g = 3; int main(void) { return g; }");
        roundtrip("int main(void) { int x = 1 + 2 * 3; return x << 1; }");
        roundtrip("int a[4]; int main(void) { a[1] = a[0] / (a[2] + 1); return a[1]; }");
    }

    #[test]
    fn roundtrips_pointers_structs() {
        roundtrip(
            "struct s { int x; int y; };
             struct s v; struct s *p = &v;
             int main(void) { p->x = 1; v.y = p->x; return v.y; }",
        );
        roundtrip("int x; int *p = &x; int **pp = &p; int main(void) { **pp = 4; return *p; }");
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            "int main(void) {
                int acc = 0;
                for (int i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { acc += i; } else { acc -= 1; } }
                while (acc > 3) { acc = acc - 2; }
                { int inner = acc; acc = inner; }
                return acc;
             }",
        );
    }

    #[test]
    fn roundtrips_casts_conds_calls() {
        roundtrip(
            "int f(int a) { return a; }
             int main(void) { int x = (short)(3 | 1); long y = (long)x; return f(x ? 1 : 2) + (int)y; }",
        );
    }

    #[test]
    fn relocate_assigns_distinct_offsets() {
        let mut p =
            parse("int main(void) { int k = 0; k = k + 1; return k; }").unwrap();
        let text = relocate(&mut p);
        assert!(text.contains("k = k + 1;"));
        let main = p.function("main").unwrap();
        let s1 = &main.body.stmts[1];
        assert!(s1.loc.is_known());
        if let StmtKind::Expr(e) = &s1.kind {
            if let ExprKind::Assign(lhs, rhs) = &e.kind {
                assert!(lhs.loc < rhs.loc, "lhs printed before rhs");
                assert_eq!(lhs.loc.line, rhs.loc.line);
            }
        }
        // Statements land on distinct lines.
        let lines: Vec<u32> = main.body.stmts.iter().map(|s| s.loc.line).collect();
        let mut sorted = lines.clone();
        sorted.dedup();
        assert_eq!(lines.len(), sorted.len());
    }

    #[test]
    fn unsigned_literal_suffixes_survive() {
        roundtrip("unsigned int u = 7U; unsigned long ul = 9UL; int main(void) { return 0; }");
    }

    #[test]
    fn negative_subexpression_prints() {
        let mut p = parse("int main(void) { return 0; }").unwrap();
        // Force a negative literal node (can arise from folding in mutators).
        use crate::build::*;
        let f = p.function_mut("main").unwrap();
        f.body.stmts.insert(0, expr_stmt(assign(var("x"), lit(-5))));
        f.body.stmts.insert(0, decl_stmt("x", Type::int(), None));
        p.assign_ids();
        let text = print(&p);
        assert!(text.contains("(-5)"), "{text}");
    }
}
