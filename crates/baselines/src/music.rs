//! MUSIC-style AST mutation (paper §4.3 baseline).
//!
//! MUSIC mutates a valid program's AST into syntactically valid mutants with
//! no guarantee about semantics. The operators here mirror MUSIC's classic
//! mutation classes: arithmetic/relational operator replacement, constant
//! replacement, statement deletion, condition negation, and — particularly
//! UB-prone in this code base — deletion of the masking idioms that make
//! seed arithmetic safe.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ubfuzz_minic::ast::*;
use ubfuzz_minic::visit::{walk_block_mut, walk_expr_mut, VisitMut};
use ubfuzz_minic::{pretty, Program};

/// The mutation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Arithmetic operator replacement (`+` ↔ `-`, `*` ↔ `/`, …).
    Aor,
    /// Relational operator replacement (`<` ↔ `<=`, `==` ↔ `!=`, …).
    Ror,
    /// Integer constant replacement.
    ConstReplace,
    /// Statement deletion.
    StmtDelete,
    /// Condition negation.
    CondNegate,
    /// Drop one side of a bitwise-and mask (`x & m` → `x`).
    MaskDrop,
}

impl MutationKind {
    /// All classes.
    pub const ALL: [MutationKind; 6] = [
        MutationKind::Aor,
        MutationKind::Ror,
        MutationKind::ConstReplace,
        MutationKind::StmtDelete,
        MutationKind::CondNegate,
        MutationKind::MaskDrop,
    ];
}

/// Applies 1–2 random mutations to a copy of `seed`. The result is
/// syntactically valid but may not type-check, may loop forever, or may
/// contain UB — exactly the MUSIC contract.
pub fn mutate(seed: &Program, rng_seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut p = seed.clone();
    let n = 1 + (rng.gen_range(0..3) == 0) as usize;
    for _ in 0..n {
        let kind = MutationKind::ALL[rng.gen_range(0..MutationKind::ALL.len())];
        apply(&mut p, kind, &mut rng);
    }
    p.assign_ids();
    pretty::relocate(&mut p);
    p
}

fn apply(p: &mut Program, kind: MutationKind, rng: &mut StdRng) {
    // Count applicable sites first, then mutate the chosen one.
    let total = count_sites(p, kind);
    if total == 0 {
        return;
    }
    let target = rng.gen_range(0..total);
    let replacement_const: i64 = match rng.gen_range(0..4) {
        0 => 0,
        1 => -1,
        2 => rng.gen_range(-100..100),
        _ => [64, 1 << 16, i32::MAX as i64, 5][rng.gen_range(0..4)],
    };
    let mut m = Mutator { kind, target, seen: 0, replacement_const, done: false };
    m.visit_program_mut(p);
}

fn count_sites(p: &Program, kind: MutationKind) -> usize {
    let mut m = Mutator {
        kind,
        target: usize::MAX,
        seen: 0,
        replacement_const: 0,
        done: false,
    };
    let mut q = p.clone();
    m.visit_program_mut(&mut q);
    m.seen
}

struct Mutator {
    kind: MutationKind,
    target: usize,
    seen: usize,
    replacement_const: i64,
    done: bool,
}

impl Mutator {
    fn hit(&mut self) -> bool {
        let is_target = self.seen == self.target && !self.done;
        self.seen += 1;
        if is_target {
            self.done = true;
        }
        is_target
    }
}

impl VisitMut for Mutator {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        match self.kind {
            MutationKind::Aor => {
                if let ExprKind::Binary(op, ..) = &mut e.kind {
                    if op.is_arith() && self.hit() {
                        *op = match op {
                            BinOp::Add => BinOp::Sub,
                            BinOp::Sub => BinOp::Mul,
                            BinOp::Mul => BinOp::Div,
                            BinOp::Div => BinOp::Rem,
                            _ => BinOp::Add,
                        };
                    }
                }
            }
            MutationKind::Ror => {
                if let ExprKind::Binary(op, ..) = &mut e.kind {
                    if op.is_comparison() && self.hit() {
                        *op = match op {
                            BinOp::Lt => BinOp::Le,
                            BinOp::Le => BinOp::Gt,
                            BinOp::Gt => BinOp::Ge,
                            BinOp::Ge => BinOp::Eq,
                            BinOp::Eq => BinOp::Ne,
                            _ => BinOp::Lt,
                        };
                    }
                }
            }
            MutationKind::ConstReplace => {
                if let ExprKind::IntLit(v, ty) = &mut e.kind {
                    if self.hit() {
                        *v = ty.wrap(self.replacement_const as i128);
                    }
                }
            }
            MutationKind::MaskDrop => {
                let is_mask = matches!(
                    &e.kind,
                    ExprKind::Binary(BinOp::BitAnd, _, r) if matches!(r.kind, ExprKind::IntLit(..))
                );
                if is_mask && self.hit() {
                    if let ExprKind::Binary(_, l, _) = std::mem::replace(
                        &mut e.kind,
                        ExprKind::IntLit(0, ubfuzz_minic::IntType::INT),
                    ) {
                        let inner = *l;
                        e.kind = inner.kind;
                    }
                }
            }
            MutationKind::CondNegate | MutationKind::StmtDelete => {}
        }
        walk_expr_mut(self, e);
    }

    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        if self.kind == MutationKind::CondNegate {
            if let StmtKind::If(c, ..) | StmtKind::While(c, _) = &mut s.kind {
                if self.hit() {
                    let old = std::mem::replace(
                        c,
                        Expr::new(ExprKind::IntLit(0, ubfuzz_minic::IntType::INT)),
                    );
                    *c = Expr::new(ExprKind::Unary(UnOp::Not, Box::new(old)));
                }
            }
        }
        ubfuzz_minic::visit::walk_stmt_mut(self, s);
    }

    fn visit_block_mut(&mut self, b: &mut Block) {
        if self.kind == MutationKind::StmtDelete {
            let mut idx = None;
            for (i, s) in b.stmts.iter().enumerate() {
                // Deleting declarations or returns breaks syntax invariants
                // too often to be interesting.
                if matches!(s.kind, StmtKind::Expr(_) | StmtKind::If(..) | StmtKind::Block(_))
                    && self.hit()
                {
                    idx = Some(i);
                    break;
                }
            }
            if let Some(i) = idx {
                b.stmts.remove(i);
            }
        }
        walk_block_mut(self, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_interp::{run_with_config, ExecConfig, Outcome};
    use ubfuzz_minic::typecheck;
    use ubfuzz_seedgen::{generate_seed, SeedOptions};

    #[test]
    fn mutants_differ_and_are_deterministic() {
        let seed = generate_seed(3, &SeedOptions::default());
        let a = mutate(&seed, 7);
        let b = mutate(&seed, 7);
        let c = mutate(&seed, 8);
        assert_eq!(pretty::print(&a), pretty::print(&b));
        assert_ne!(pretty::print(&a), pretty::print(&c));
    }

    #[test]
    fn most_mutants_do_not_contain_ub() {
        // The Table 4 phenomenon: MUSIC produces mostly UB-free programs.
        let mut ub = 0;
        let mut clean = 0;
        let mut invalid = 0;
        // Mutation can turn a terminating loop into a multi-million-step
        // one; a tight budget keeps the test fast (those runs count as
        // invalid, like the campaign's timeout bucket).
        let cfg = ExecConfig { step_limit: 200_000, ..ExecConfig::default() };
        for s in 0..15 {
            let seed = generate_seed(s, &SeedOptions::default());
            for m in 0..10 {
                let p = mutate(&seed, m);
                if typecheck(&p).is_err() {
                    invalid += 1;
                    continue;
                }
                match run_with_config(&p, &cfg).0 {
                    Outcome::Ub(_) => ub += 1,
                    Outcome::Exit { .. } => clean += 1,
                    _ => invalid += 1,
                }
            }
        }
        assert!(clean > ub * 2, "mostly clean: {clean} clean vs {ub} ub ({invalid} invalid)");
        assert!(ub > 0, "some mutants do exhibit UB");
    }
}
