//! `ubfuzz-baselines` — the two baseline generators of paper §4.3 plus the
//! Juliet-style test suite.
//!
//! * [`music`]: a MUSIC-like AST mutator. Syntactically valid mutants with
//!   no semantic guarantee — most contain no UB at all (Table 4: 4% UB).
//! * The Csmith-NoSafe baseline is [`ubfuzz_seedgen`] with
//!   `SeedOptions::safe_math = false` (re-exported here for convenience).
//! * [`juliet`]: a small corpus of fixed, self-contained UB programs in the
//!   style of NIST's Juliet suite — simple, well-known patterns that
//!   exercise sanitizers but not their corner cases (§4.3 finds zero
//!   sanitizer bugs with it).

pub mod juliet;
pub mod music;

pub use juliet::{juliet_suite, JulietCase};
pub use music::{mutate, MutationKind};

/// Csmith-NoSafe options (paper §4.3): memory safety intact, arithmetic
/// guards removed.
pub fn nosafe_options() -> ubfuzz_seedgen::SeedOptions {
    ubfuzz_seedgen::SeedOptions { safe_math: false, ..ubfuzz_seedgen::SeedOptions::default() }
}
