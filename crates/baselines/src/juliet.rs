//! A Juliet-style fixed UB test corpus (paper §4.3).
//!
//! NIST's Juliet suite contains thousands of small, templated test cases
//! per CWE. The paper selects the 16,344 sanitizer-detectable ones and finds
//! that **none** exposes a sanitizer FN bug — the patterns are too simple
//! and too uniform. This module generates the same flavor of corpus:
//! straightforward single-UB programs from fixed templates, parameterized
//! over a few sizes and types.

use ubfuzz_minic::{parse, pretty, Program, UbKind};

/// One Juliet-style test case.
#[derive(Debug, Clone)]
pub struct JulietCase {
    /// CWE-style name, e.g. `"CWE121_stack_overflow_size3"`.
    pub name: String,
    /// The program.
    pub program: Program,
    /// The UB it contains.
    pub kind: UbKind,
}

fn case(name: String, src: &str, kind: UbKind) -> JulietCase {
    let mut program = parse(src).unwrap_or_else(|e| panic!("juliet template {name}: {e}"));
    pretty::relocate(&mut program);
    JulietCase { name, program, kind }
}

/// Builds the corpus (deterministic, ~40 cases).
pub fn juliet_suite() -> Vec<JulietCase> {
    let mut out = Vec::new();
    // CWE-121: stack-based buffer overflow.
    for n in [3usize, 5, 8] {
        out.push(case(
            format!("CWE121_stack_overflow_size{n}"),
            &format!(
                "int main(void) {{ int buf[{n}]; int i = {n}; buf[i] = 1; return buf[0]; }}"
            ),
            UbKind::BufOverflowArray,
        ));
        out.push(case(
            format!("CWE121_stack_overflow_loop{n}"),
            &format!(
                "int main(void) {{ int buf[{n}]; for (int i = 0; i <= {n}; i = i + 1) {{ buf[i] = i; }} return buf[0]; }}"
            ),
            UbKind::BufOverflowArray,
        ));
    }
    // CWE-122: heap-based buffer overflow.
    for n in [4usize, 8] {
        out.push(case(
            format!("CWE122_heap_overflow_size{n}"),
            &format!(
                "int main(void) {{ int *p = (int*)malloc({}); p[{n}] = 1; return 0; }}",
                n * 4
            ),
            UbKind::BufOverflowPtr,
        ));
    }
    // CWE-416: use after free.
    for n in [8usize, 16] {
        out.push(case(
            format!("CWE416_use_after_free_{n}"),
            &format!(
                "int main(void) {{ int *p = (int*)malloc({n}); *p = 1; free(p); return *p; }}"
            ),
            UbKind::UseAfterFree,
        ));
    }
    // CWE-562 flavored: use after scope.
    out.push(case(
        "CWE562_use_after_scope".to_string(),
        "int g;
         int main(void) {
            int *p = &g;
            { int local = 7; p = &local; }
            return *p;
         }",
        UbKind::UseAfterScope,
    ));
    // CWE-476: null pointer dereference.
    for via_field in [false, true] {
        let src = if via_field {
            "struct s { int a; int b; };
             int main(void) { struct s *p = (struct s*)0; return p->b; }"
        } else {
            "int main(void) { int *p = (int*)0; return *p; }"
        };
        out.push(case(
            format!("CWE476_null_deref_{}", if via_field { "field" } else { "plain" }),
            src,
            UbKind::NullDeref,
        ));
    }
    // CWE-190: integer overflow.
    for (label, expr) in [
        ("add", "x + 1"),
        ("mul", "x * 2"),
        ("sub", "(-x) - 2"),
    ] {
        out.push(case(
            format!("CWE190_int_overflow_{label}"),
            &format!(
                "int x = 2147483647; int main(void) {{ int y = {expr}; return y; }}"
            ),
            UbKind::IntOverflow,
        ));
    }
    // CWE-369: divide by zero.
    for op in ["/", "%"] {
        out.push(case(
            format!("CWE369_div_by_zero_{}", if op == "/" { "div" } else { "rem" }),
            &format!("int x = 100; int z = 0; int main(void) {{ return x {op} z; }}"),
            UbKind::DivByZero,
        ));
    }
    // CWE-1335 flavored: shift out of range.
    for amt in [32i64, 40, -1] {
        out.push(case(
            format!("CWE1335_shift_{amt}"),
            &format!("int x = 1; int s = {amt}; int main(void) {{ return x << s; }}"),
            UbKind::ShiftOverflow,
        ));
    }
    // CWE-457: use of uninitialized variable.
    out.push(case(
        "CWE457_uninit_branch".to_string(),
        "int main(void) { int x; if (x) { return 1; } return 0; }",
        UbKind::UninitUse,
    ));
    out.push(case(
        "CWE457_uninit_loop".to_string(),
        "int main(void) { int n; while (n) { n = 0; } return 0; }",
        UbKind::UninitUse,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_interp::run_program;

    #[test]
    fn corpus_is_nonempty_and_covers_kinds() {
        let suite = juliet_suite();
        assert!(suite.len() >= 20);
        let kinds: std::collections::HashSet<UbKind> =
            suite.iter().map(|c| c.kind).collect();
        for k in UbKind::GENERATABLE {
            assert!(kinds.contains(&k), "Juliet covers {k}");
        }
    }

    #[test]
    fn every_case_exhibits_its_labelled_ub() {
        for c in juliet_suite() {
            let outcome = run_program(&c.program);
            let ev = outcome
                .ub()
                .unwrap_or_else(|| panic!("{}: expected UB, got {outcome:?}", c.name));
            assert_eq!(ev.kind, c.kind, "{}", c.name);
        }
    }
}
