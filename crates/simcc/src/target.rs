//! Compiler identities: vendor, version, optimization level.

use std::fmt;

/// Compiler vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// The GCC-like pipeline.
    Gcc,
    /// The LLVM-like pipeline.
    Llvm,
}

impl Vendor {
    /// Both vendors.
    pub const ALL: [Vendor; 2] = [Vendor::Gcc, Vendor::Llvm];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Gcc => "GCC",
            Vendor::Llvm => "LLVM",
        }
    }

    /// Stable release versions modelled for this vendor (paper Fig. 10 uses
    /// GCC 5–13 and LLVM 5–17).
    pub fn stable_versions(self) -> std::ops::RangeInclusive<u32> {
        match self {
            Vendor::Gcc => 5..=13,
            Vendor::Llvm => 5..=17,
        }
    }

    /// The in-development version the campaign tests (one past the newest
    /// stable release).
    pub fn dev_version(self) -> u32 {
        *self.stable_versions().end() + 1
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// No optimization (frontend folding still applies).
    O0,
    /// Basic optimizations.
    O1,
    /// Optimize for size.
    Os,
    /// Standard optimizations.
    O2,
    /// Aggressive optimizations.
    O3,
}

impl OptLevel {
    /// The levels the paper enables (§4.1).
    pub const ALL: [OptLevel; 5] =
        [OptLevel::O0, OptLevel::O1, OptLevel::Os, OptLevel::O2, OptLevel::O3];

    /// Command-line spelling.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::Os => "-Os",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete compiler: vendor plus version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompilerId {
    /// Vendor.
    pub vendor: Vendor,
    /// Major version.
    pub version: u32,
}

impl CompilerId {
    /// The development head of a vendor (what the campaign tests).
    pub fn dev(vendor: Vendor) -> CompilerId {
        CompilerId { vendor, version: vendor.dev_version() }
    }
}

impl fmt::Display for CompilerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.vendor, self.version)
    }
}

/// Compiler and optimization level a module was built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildInfo {
    /// The compiler.
    pub compiler: CompilerId,
    /// The optimization level.
    pub opt: OptLevel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ranges_match_paper() {
        assert_eq!(Vendor::Gcc.stable_versions(), 5..=13);
        assert_eq!(Vendor::Llvm.stable_versions(), 5..=17);
        assert_eq!(Vendor::Gcc.dev_version(), 14);
    }

    #[test]
    fn display_forms() {
        assert_eq!(CompilerId::dev(Vendor::Gcc).to_string(), "GCC-14");
        assert_eq!(OptLevel::Os.to_string(), "-Os");
    }
}
