//! Self-coverage of the sanitizer implementation (Table 5 substrate, and
//! the feedback signal for coverage-guided campaigns).
//!
//! The paper measures Gcov line/function/branch coverage of the
//! sanitizer-related files in GCC and LLVM while compiling and running the
//! generated programs. The analogue here: the sanitizer passes and the
//! sanitizer runtime (in `ubfuzz-simvm`) are annotated with named coverage
//! points — function entries, lines (logical decision groups) and branch
//! directions — registered in a static table so percentages have a fixed
//! denominator.
//!
//! **Capture is scoped, not global.** Hits are recorded only while a
//! capture frame is installed on the recording thread: [`capture`] collects
//! one unit's hits into a [`CovDelta`] the scheduler threads back to the
//! campaign frontier, and a [`Collector`] aggregates a whole measurement
//! window across worker threads. Outside any frame, [`hit`] is a no-op —
//! there is no process-wide map, so concurrent campaigns (or serve workers
//! hosted in one process) can no longer cross-contaminate each other's
//! coverage, and a panicking unit can poison at most the collector it was
//! attached to, which recovers the lock and reports the event instead of
//! propagating the panic to every later unit.

use crate::target::Vendor;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Coverage point kinds, mirroring Gcov's LC/FC/BC columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointKind {
    /// Line (statement-group) coverage.
    Line,
    /// Function coverage.
    Func,
    /// Branch-direction coverage.
    Branch,
}

/// The static registry of all sanitizer-related coverage points:
/// `(file, point name, kind)`.
pub const POINTS: &[(&str, &str, PointKind)] = &[
    // asan pass
    ("asan.rs", "run", PointKind::Func),
    ("asan.rs", "analyze_func", PointKind::Line),
    ("asan.rs", "instrument_load", PointKind::Line),
    ("asan.rs", "instrument_store", PointKind::Line),
    ("asan.rs", "instrument_memcopy", PointKind::Line),
    ("asan.rs", "poison_scope", PointKind::Line),
    ("asan.rs", "unpoison_scope", PointKind::Line),
    ("asan.rs", "global_redzones", PointKind::Line),
    ("asan.rs", "defect_suppressed", PointKind::Branch),
    ("asan.rs", "check_emitted", PointKind::Branch),
    ("asan.rs", "scope_defect", PointKind::Branch),
    ("asan.rs", "scope_kept", PointKind::Branch),
    ("asan.rs", "odd_redzone_gap", PointKind::Branch),
    ("asan.rs", "memcopy_tail_truncated", PointKind::Branch),
    ("asan.rs", "legit_scope_extension", PointKind::Branch),
    // ubsan pass
    ("ubsan.rs", "run", PointKind::Func),
    ("ubsan.rs", "arith_check", PointKind::Line),
    ("ubsan.rs", "neg_check", PointKind::Line),
    ("ubsan.rs", "shift_check", PointKind::Line),
    ("ubsan.rs", "div_check", PointKind::Line),
    ("ubsan.rs", "null_check", PointKind::Line),
    ("ubsan.rs", "bound_check", PointKind::Line),
    ("ubsan.rs", "defect_suppressed", PointKind::Branch),
    ("ubsan.rs", "check_emitted", PointKind::Branch),
    ("ubsan.rs", "wrong_line_emitted", PointKind::Branch),
    ("ubsan.rs", "off_by_one_bound", PointKind::Branch),
    // msan pass
    ("msan.rs", "run", PointKind::Func),
    ("msan.rs", "branch_check", PointKind::Line),
    ("msan.rs", "div_check", PointKind::Line),
    ("msan.rs", "output_check", PointKind::Line),
    ("msan.rs", "policy_defective", PointKind::Branch),
    ("msan.rs", "policy_correct", PointKind::Branch),
    // sanitizer runtime (hit by ubfuzz-simvm)
    ("rt_shadow.rs", "poison_global_redzone", PointKind::Line),
    ("rt_shadow.rs", "poison_stack_redzone", PointKind::Line),
    ("rt_shadow.rs", "poison_heap_redzone", PointKind::Line),
    ("rt_shadow.rs", "poison_freed", PointKind::Line),
    ("rt_shadow.rs", "poison_scope", PointKind::Line),
    ("rt_shadow.rs", "unpoison_scope", PointKind::Line),
    ("rt_shadow.rs", "shadow_clean", PointKind::Branch),
    ("rt_shadow.rs", "shadow_poisoned", PointKind::Branch),
    ("rt_report.rs", "report_overflow", PointKind::Func),
    ("rt_report.rs", "report_uaf", PointKind::Func),
    ("rt_report.rs", "report_uas", PointKind::Func),
    ("rt_report.rs", "report_null", PointKind::Func),
    ("rt_report.rs", "report_arith", PointKind::Func),
    ("rt_report.rs", "report_neg", PointKind::Func),
    ("rt_report.rs", "report_shift", PointKind::Func),
    ("rt_report.rs", "report_div", PointKind::Func),
    ("rt_report.rs", "report_bound", PointKind::Func),
    ("rt_report.rs", "report_msan", PointKind::Func),
    ("rt_msan.rs", "taint_load", PointKind::Line),
    ("rt_msan.rs", "taint_store", PointKind::Line),
    ("rt_msan.rs", "taint_bin", PointKind::Line),
    ("rt_msan.rs", "taint_sub_const_cleared", PointKind::Branch),
    ("rt_msan.rs", "taint_propagated", PointKind::Branch),
];

/// One hit coverage point: which vendor's toolchain exercised which named
/// point. The `&'static str`s are always interned against [`POINTS`]
/// (decoded points go through [`lookup`]), so comparison and ordering are
/// cheap and canonical.
pub type CovPoint = (Vendor, &'static str, &'static str);

/// Re-interns a decoded `(file, point)` pair against [`POINTS`]. `None`
/// means the pair is not a registered coverage point — for a store decoding
/// a persisted frontier that is corruption, not a new point.
pub fn lookup(file: &str, point: &str) -> Option<(&'static str, &'static str)> {
    POINTS.iter().find(|(f, p, _)| *f == file && *p == point).map(|&(f, p, _)| (f, p))
}

/// The coverage points one capture scope observed, in canonical
/// (vendor, file, point) order. Produced per unit by [`capture`]; unioned
/// across units by the campaign frontier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CovDelta {
    points: BTreeSet<CovPoint>,
}

impl CovDelta {
    /// An empty delta.
    pub fn new() -> CovDelta {
        CovDelta::default()
    }

    /// Adds one point (used when decoding a persisted delta).
    pub fn insert(&mut self, point: CovPoint) {
        self.points.insert(point);
    }

    /// Whether `point` is in the delta.
    pub fn contains(&self, point: CovPoint) -> bool {
        self.points.contains(&point)
    }

    /// Unions `other` into `self`.
    pub fn merge(&mut self, other: &CovDelta) {
        self.points.extend(other.points.iter().copied());
    }

    /// The points, in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = CovPoint> + '_ {
        self.points.iter().copied()
    }

    /// Number of distinct points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl FromIterator<CovPoint> for CovDelta {
    fn from_iter<I: IntoIterator<Item = CovPoint>>(iter: I) -> CovDelta {
        CovDelta { points: iter.into_iter().collect() }
    }
}

/// Where the current thread's hits go: a frame-local delta ([`capture`]) or
/// a shared cross-thread collector ([`Collector::attach`]).
enum Sink {
    Local(CovDelta),
    Shared(Arc<CollectorInner>),
}

thread_local! {
    static SINKS: RefCell<Vec<Sink>> = const { RefCell::new(Vec::new()) };
}

/// Pops the top capture frame on scope exit — including panic unwinds, so a
/// unit that dies mid-compile cannot leak its frame into the next unit
/// scheduled on the same worker thread.
struct FrameGuard;

impl Drop for FrameGuard {
    fn drop(&mut self) {
        SINKS.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Records a hit of `point` in `file` for `vendor`'s toolchain into the
/// innermost capture frame on this thread; a no-op when nothing captures.
pub fn hit(vendor: Vendor, file: &'static str, point: &'static str) {
    SINKS.with(|s| {
        if let Some(top) = s.borrow_mut().last_mut() {
            match top {
                Sink::Local(delta) => {
                    delta.points.insert((vendor, file, point));
                }
                Sink::Shared(inner) => inner.record((vendor, file, point)),
            }
        }
    });
}

/// Runs `f` with a fresh capture frame on this thread and returns its value
/// together with the coverage points it hit — the per-unit seam the
/// executor uses to thread sanitizer coverage back to the scheduler.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, CovDelta) {
    SINKS.with(|s| s.borrow_mut().push(Sink::Local(CovDelta::new())));
    let _guard = FrameGuard;
    let value = f();
    let delta = SINKS.with(|s| match s.borrow_mut().last_mut() {
        Some(Sink::Local(delta)) => std::mem::take(delta),
        _ => CovDelta::new(),
    });
    (value, delta)
}

/// Locks a collector mutex, recovering the guard when a panicking holder
/// poisoned it — the same degrade-never-abort contract as the store's
/// `relock` helpers (which live below this crate in the dependency order,
/// hence the local copy). Recoveries are counted so the campaign can report
/// the event instead of losing it.
fn relock<'a, T>(m: &'a Mutex<T>, recoveries: &AtomicUsize) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| {
        recoveries.fetch_add(1, Ordering::Relaxed);
        e.into_inner()
    })
}

#[derive(Debug, Default)]
struct CollectorInner {
    covered: Mutex<CovDelta>,
    poison_recoveries: AtomicUsize,
}

impl CollectorInner {
    fn record(&self, point: CovPoint) {
        relock(&self.covered, &self.poison_recoveries).points.insert(point);
    }
}

/// A shared coverage aggregate for one measurement window: worker threads
/// [`Collector::attach`] their task bodies and every hit lands in one
/// poison-recovering set. Replaces the old process-global hit map — each
/// experiment owns its collector, so concurrent campaigns in one process
/// observe only their own hits.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    inner: Arc<CollectorInner>,
}

impl Collector {
    /// A fresh, empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Runs `f` with this collector installed as the thread's capture
    /// frame; every [`hit`] inside lands in the shared set.
    pub fn attach<T>(&self, f: impl FnOnce() -> T) -> T {
        SINKS.with(|s| s.borrow_mut().push(Sink::Shared(self.inner.clone())));
        let _guard = FrameGuard;
        f()
    }

    /// A copy of everything collected so far, in canonical order.
    pub fn snapshot(&self) -> CovDelta {
        relock(&self.inner.covered, &self.inner.poison_recoveries).clone()
    }

    /// Gcov-style percentages over the collected points for `vendor`.
    pub fn stats(&self, vendor: Vendor) -> CovStats {
        stats_of(&self.snapshot(), vendor)
    }

    /// How many times a poisoned lock was recovered (a unit panicked while
    /// holding it). Non-zero is a telemetry event, never an abort.
    pub fn poison_recoveries(&self) -> usize {
        self.inner.poison_recoveries.load(Ordering::Relaxed)
    }
}

/// Coverage percentages for one vendor, Gcov style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CovStats {
    /// Line coverage percentage.
    pub line_pct: f64,
    /// Function coverage percentage.
    pub func_pct: f64,
    /// Branch coverage percentage.
    pub branch_pct: f64,
}

/// Computes coverage over all registered sanitizer points for `vendor`
/// from a collected point set.
pub fn stats_of(covered: &CovDelta, vendor: Vendor) -> CovStats {
    let pct = |kind: PointKind| {
        let total = POINTS.iter().filter(|(_, _, k)| *k == kind).count();
        let hit = POINTS
            .iter()
            .filter(|&&(f, p, k)| k == kind && covered.contains((vendor, f, p)))
            .count();
        if total == 0 {
            0.0
        } else {
            100.0 * hit as f64 / total as f64
        }
    };
    CovStats {
        line_pct: pct(PointKind::Line),
        func_pct: pct(PointKind::Func),
        branch_pct: pct(PointKind::Branch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn capture_scopes_hits_per_frame() {
        // Outside any frame, hits vanish.
        hit(Vendor::Gcc, "asan.rs", "run");
        let ((), delta) = capture(|| {
            hit(Vendor::Gcc, "asan.rs", "run");
            hit(Vendor::Gcc, "asan.rs", "instrument_store");
            hit(Vendor::Gcc, "asan.rs", "run"); // dedup
        });
        assert_eq!(delta.len(), 2);
        let s1 = stats_of(&delta, Vendor::Gcc);
        assert!(s1.func_pct > 0.0);
        assert!(s1.line_pct > 0.0);
        assert_eq!(stats_of(&delta, Vendor::Llvm).func_pct, 0.0, "vendors tracked separately");
        // Frames nest: the inner frame owns the hit.
        let ((_, inner), outer) = capture(|| {
            capture(|| hit(Vendor::Llvm, "msan.rs", "run"))
        });
        assert_eq!(inner.len(), 1);
        assert!(outer.is_empty());
    }

    #[test]
    fn capture_frame_pops_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            let ((), _) = capture(|| panic!("unit died"));
        });
        assert!(caught.is_err());
        // The panicking frame must not linger and swallow later hits.
        hit(Vendor::Gcc, "asan.rs", "run");
        let ((), delta) = capture(|| hit(Vendor::Gcc, "ubsan.rs", "run"));
        assert_eq!(delta.len(), 1);
    }

    #[test]
    fn collector_aggregates_across_threads_and_recovers_poison() {
        let collector = Collector::new();
        std::thread::scope(|scope| {
            for file in ["asan.rs", "ubsan.rs"] {
                let c = &collector;
                scope.spawn(move || c.attach(|| hit(Vendor::Gcc, file, "run")));
            }
        });
        assert_eq!(collector.snapshot().len(), 2);
        assert!(collector.stats(Vendor::Gcc).func_pct > 0.0);
        // Poison the lock from a panicking attach; the collector recovers
        // and keeps collecting, counting the recovery for telemetry.
        let inner = collector.inner.clone();
        let _ = std::thread::spawn(move || {
            let _guard = inner.covered.lock().unwrap();
            panic!("holder dies");
        })
        .join();
        collector.attach(|| hit(Vendor::Llvm, "msan.rs", "run"));
        assert_eq!(collector.snapshot().len(), 3);
        assert!(collector.poison_recoveries() > 0, "recovery must be observable");
    }

    #[test]
    fn lookup_reinterns_registered_points_only() {
        let (f, p) = lookup("asan.rs", "run").expect("registered point");
        assert_eq!((f, p), ("asan.rs", "run"));
        assert!(lookup("asan.rs", "no_such_point").is_none());
        assert!(lookup("other.rs", "run").is_none());
    }

    #[test]
    fn points_table_is_consistent() {
        // No duplicate (file, point) pairs.
        let mut seen = HashSet::new();
        for (f, p, _) in POINTS {
            assert!(seen.insert((f, p)), "duplicate point {f}/{p}");
        }
        assert!(POINTS.len() > 40);
    }
}
