//! Self-coverage of the sanitizer implementation (Table 5 substrate).
//!
//! The paper measures Gcov line/function/branch coverage of the
//! sanitizer-related files in GCC and LLVM while compiling and running the
//! generated programs. The analogue here: the sanitizer passes and the
//! sanitizer runtime (in `ubfuzz-simvm`) are annotated with named coverage
//! points — function entries, lines (logical decision groups) and branch
//! directions — registered in a static table so percentages have a fixed
//! denominator.

use crate::target::Vendor;
use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, OnceLock};

/// Coverage point kinds, mirroring Gcov's LC/FC/BC columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointKind {
    /// Line (statement-group) coverage.
    Line,
    /// Function coverage.
    Func,
    /// Branch-direction coverage.
    Branch,
}

/// The static registry of all sanitizer-related coverage points:
/// `(file, point name, kind)`.
pub const POINTS: &[(&str, &str, PointKind)] = &[
    // asan pass
    ("asan.rs", "run", PointKind::Func),
    ("asan.rs", "analyze_func", PointKind::Line),
    ("asan.rs", "instrument_load", PointKind::Line),
    ("asan.rs", "instrument_store", PointKind::Line),
    ("asan.rs", "instrument_memcopy", PointKind::Line),
    ("asan.rs", "poison_scope", PointKind::Line),
    ("asan.rs", "unpoison_scope", PointKind::Line),
    ("asan.rs", "global_redzones", PointKind::Line),
    ("asan.rs", "defect_suppressed", PointKind::Branch),
    ("asan.rs", "check_emitted", PointKind::Branch),
    ("asan.rs", "scope_defect", PointKind::Branch),
    ("asan.rs", "scope_kept", PointKind::Branch),
    ("asan.rs", "odd_redzone_gap", PointKind::Branch),
    ("asan.rs", "memcopy_tail_truncated", PointKind::Branch),
    ("asan.rs", "legit_scope_extension", PointKind::Branch),
    // ubsan pass
    ("ubsan.rs", "run", PointKind::Func),
    ("ubsan.rs", "arith_check", PointKind::Line),
    ("ubsan.rs", "neg_check", PointKind::Line),
    ("ubsan.rs", "shift_check", PointKind::Line),
    ("ubsan.rs", "div_check", PointKind::Line),
    ("ubsan.rs", "null_check", PointKind::Line),
    ("ubsan.rs", "bound_check", PointKind::Line),
    ("ubsan.rs", "defect_suppressed", PointKind::Branch),
    ("ubsan.rs", "check_emitted", PointKind::Branch),
    ("ubsan.rs", "wrong_line_emitted", PointKind::Branch),
    ("ubsan.rs", "off_by_one_bound", PointKind::Branch),
    // msan pass
    ("msan.rs", "run", PointKind::Func),
    ("msan.rs", "branch_check", PointKind::Line),
    ("msan.rs", "div_check", PointKind::Line),
    ("msan.rs", "output_check", PointKind::Line),
    ("msan.rs", "policy_defective", PointKind::Branch),
    ("msan.rs", "policy_correct", PointKind::Branch),
    // sanitizer runtime (hit by ubfuzz-simvm)
    ("rt_shadow.rs", "poison_global_redzone", PointKind::Line),
    ("rt_shadow.rs", "poison_stack_redzone", PointKind::Line),
    ("rt_shadow.rs", "poison_heap_redzone", PointKind::Line),
    ("rt_shadow.rs", "poison_freed", PointKind::Line),
    ("rt_shadow.rs", "poison_scope", PointKind::Line),
    ("rt_shadow.rs", "unpoison_scope", PointKind::Line),
    ("rt_shadow.rs", "shadow_clean", PointKind::Branch),
    ("rt_shadow.rs", "shadow_poisoned", PointKind::Branch),
    ("rt_report.rs", "report_overflow", PointKind::Func),
    ("rt_report.rs", "report_uaf", PointKind::Func),
    ("rt_report.rs", "report_uas", PointKind::Func),
    ("rt_report.rs", "report_null", PointKind::Func),
    ("rt_report.rs", "report_arith", PointKind::Func),
    ("rt_report.rs", "report_neg", PointKind::Func),
    ("rt_report.rs", "report_shift", PointKind::Func),
    ("rt_report.rs", "report_div", PointKind::Func),
    ("rt_report.rs", "report_bound", PointKind::Func),
    ("rt_report.rs", "report_msan", PointKind::Func),
    ("rt_msan.rs", "taint_load", PointKind::Line),
    ("rt_msan.rs", "taint_store", PointKind::Line),
    ("rt_msan.rs", "taint_bin", PointKind::Line),
    ("rt_msan.rs", "taint_sub_const_cleared", PointKind::Branch),
    ("rt_msan.rs", "taint_propagated", PointKind::Branch),
];

type HitMap = HashMap<Vendor, HashSet<(&'static str, &'static str)>>;

fn hits() -> &'static Mutex<HitMap> {
    static COV: OnceLock<Mutex<HitMap>> = OnceLock::new();
    COV.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Clears all recorded hits (start of a measurement window).
pub fn reset() {
    hits().lock().expect("coverage lock").clear();
}

/// Records a hit of `point` in `file` for `vendor`'s toolchain.
pub fn hit(vendor: Vendor, file: &'static str, point: &'static str) {
    hits().lock().expect("coverage lock").entry(vendor).or_default().insert((file, point));
}

/// Coverage percentages for one vendor, Gcov style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CovStats {
    /// Line coverage percentage.
    pub line_pct: f64,
    /// Function coverage percentage.
    pub func_pct: f64,
    /// Branch coverage percentage.
    pub branch_pct: f64,
}

/// Computes coverage over all registered sanitizer points for `vendor`.
pub fn stats(vendor: Vendor) -> CovStats {
    let map = hits().lock().expect("coverage lock");
    let hit_set = map.get(&vendor).cloned().unwrap_or_default();
    let pct = |kind: PointKind| {
        let total = POINTS.iter().filter(|(_, _, k)| *k == kind).count();
        let hit = POINTS
            .iter()
            .filter(|(f, p, k)| *k == kind && hit_set.contains(&(*f, *p)))
            .count();
        if total == 0 {
            0.0
        } else {
            100.0 * hit as f64 / total as f64
        }
    };
    CovStats {
        line_pct: pct(PointKind::Line),
        func_pct: pct(PointKind::Func),
        branch_pct: pct(PointKind::Branch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_hit_stats_roundtrip() {
        reset();
        let s0 = stats(Vendor::Gcc);
        assert_eq!(s0.func_pct, 0.0);
        hit(Vendor::Gcc, "asan.rs", "run");
        hit(Vendor::Gcc, "asan.rs", "instrument_store");
        let s1 = stats(Vendor::Gcc);
        assert!(s1.func_pct > 0.0);
        assert!(s1.line_pct > 0.0);
        assert_eq!(stats(Vendor::Llvm).func_pct, 0.0, "vendors tracked separately");
        reset();
    }

    #[test]
    fn points_table_is_consistent() {
        // No duplicate (file, point) pairs.
        let mut seen = HashSet::new();
        for (f, p, _) in POINTS {
            assert!(seen.insert((f, p)), "duplicate point {f}/{p}");
        }
        assert!(POINTS.len() > 40);
    }
}
