//! Vendor compilation pipelines (paper Fig. 2).
//!
//! `frontend → early optimizer passes → sanitizer pass → late optimizer
//! passes → "backend"`. The two vendors run different pass mixes at each
//! level, and newer versions optimize harder — which is what makes
//! cross-compiler and cross-level differential testing produce both kinds of
//! discrepancy the paper wrestles with.
//!
//! The pipeline is exposed as four explicit stages — [`lower_stage`],
//! [`early_opt_stage`], [`sanitize_stage`], [`late_opt_stage`] — because the
//! first two depend only on `(program, vendor, version, opt)`, not on the
//! sanitizer or the defect world. That *sanitizer-independent prefix*
//! ([`compile_prefix`]) is what [`crate::session::CompileSession`] memoizes
//! so the campaign's per-program sanitizer matrix lowers and pre-optimizes
//! each `(compiler, opt)` cell once instead of once per sanitizer.
//! [`compile`] composes the stages and is byte-for-byte the old single-shot
//! pipeline.

use crate::defects::DefectRegistry;
use crate::ir::{Module, Sanitizer};
use crate::lower::{lower, CompileError};
use crate::partition::SanPolicy;
use crate::passes;
use crate::san::{self, SanCtx};
use crate::target::{BuildInfo, CompilerId, OptLevel, Vendor};
use ubfuzz_minic::Program;

/// A full compiler invocation: compiler, level, sanitizer, defect world.
#[derive(Debug, Clone)]
pub struct CompileConfig<'a> {
    /// Which compiler.
    pub compiler: CompilerId,
    /// Optimization level.
    pub opt: OptLevel,
    /// Sanitizer to enable, if any (`-fsanitize=`).
    pub sanitizer: Option<Sanitizer>,
    /// The defect world (usually [`DefectRegistry::full`]).
    pub registry: &'a DefectRegistry,
    /// Partial-sanitization policy ([`SanPolicy::Full`] is the bit-identical
    /// default).
    pub san_policy: SanPolicy,
}

impl<'a> CompileConfig<'a> {
    /// Development-head compiler at `opt` with `sanitizer`.
    pub fn dev(
        vendor: Vendor,
        opt: OptLevel,
        sanitizer: Option<Sanitizer>,
        registry: &'a DefectRegistry,
    ) -> CompileConfig<'a> {
        CompileConfig {
            compiler: CompilerId::dev(vendor),
            opt,
            sanitizer,
            registry,
            san_policy: SanPolicy::Full,
        }
    }

    /// The same configuration under `policy`.
    pub fn with_policy(mut self, policy: SanPolicy) -> CompileConfig<'a> {
        self.san_policy = policy;
        self
    }
}

/// Compiles `program` under `cfg`.
///
/// # Errors
///
/// Fails on programs outside the frontend subset (e.g. non-constant global
/// initializers) and on unsupported sanitizer combinations — GCC has no
/// MSan, exactly as the paper notes in §4.1.
pub fn compile(program: &Program, cfg: &CompileConfig<'_>) -> Result<Module, CompileError> {
    check_supported(cfg)?;
    let mut module = compile_prefix(program, cfg.compiler, cfg.opt)?;
    sanitize_stage(&mut module, cfg);
    late_opt_stage(&mut module, cfg.opt);
    Ok(module)
}

/// Rejects compiler/sanitizer combinations the vendors do not ship.
pub(crate) fn check_supported(cfg: &CompileConfig<'_>) -> Result<(), CompileError> {
    if cfg.compiler.vendor == Vendor::Gcc && cfg.sanitizer == Some(Sanitizer::Msan) {
        return Err(CompileError { message: "GCC does not support MemorySanitizer".into() });
    }
    Ok(())
}

/// Stage 1 — frontend: lowers `program` and tags the module with its build
/// identity.
pub fn lower_stage(
    program: &Program,
    compiler: CompilerId,
    opt: OptLevel,
) -> Result<Module, CompileError> {
    let mut module = lower(program)?;
    module.build = Some(BuildInfo { compiler, opt });
    Ok(module)
}

/// Stages 1+2 — the sanitizer-independent compilation prefix: frontend plus
/// the pre-sanitizer optimization pipeline. Depends only on
/// `(program, vendor, version, opt)`, which is exactly the cache key
/// [`crate::session::CompileSession`] memoizes it under.
pub fn compile_prefix(
    program: &Program,
    compiler: CompilerId,
    opt: OptLevel,
) -> Result<Module, CompileError> {
    let mut module = lower_stage(program, compiler, opt)?;
    early_opt_stage(&mut module, compiler, opt);
    Ok(module)
}

/// Stage 3 — sanitizer instrumentation (`-fsanitize=`), a no-op without a
/// sanitizer. This is where the defect world enters the pipeline.
pub fn sanitize_stage(module: &mut Module, cfg: &CompileConfig<'_>) {
    if let Some(s) = cfg.sanitizer {
        let ctx = SanCtx {
            vendor: cfg.compiler.vendor,
            version: cfg.compiler.version,
            opt: cfg.opt,
            registry: cfg.registry,
            policy: cfg.san_policy,
        };
        match s {
            Sanitizer::Asan => san::run_asan(module, &ctx),
            Sanitizer::Ubsan => {
                san::run_ubsan(module, &ctx);
                san::ubsan_global_store_fixup(module, &ctx);
            }
            Sanitizer::Msan => san::run_msan(module, &ctx),
        }
    }
}

/// Unroll threshold per vendor/version/level.
fn unroll_threshold(compiler: CompilerId, opt: OptLevel) -> i64 {
    let v = compiler.version as i64;
    match (compiler.vendor, opt) {
        (_, OptLevel::O0 | OptLevel::O1 | OptLevel::Os) => 0,
        (Vendor::Gcc, OptLevel::O2) => {
            if v >= 10 {
                8
            } else {
                4
            }
        }
        (Vendor::Gcc, OptLevel::O3) => 16,
        (Vendor::Llvm, OptLevel::O2) => 6,
        (Vendor::Llvm, OptLevel::O3) => {
            if v >= 12 {
                16
            } else {
                12
            }
        }
    }
}

/// Stage 2 — the pre-sanitizer optimization pipeline. Reads only the vendor,
/// version and level; the sanitizer choice must not influence it or the
/// cached prefix would diverge from the single-shot pipeline.
pub fn early_opt_stage(m: &mut Module, compiler: CompilerId, opt: OptLevel) {
    let basic = |m: &mut Module, loads: bool| {
        for _ in 0..3 {
            let mut any = false;
            any |= passes::constfold(m);
            any |= passes::dce(m, loads);
            any |= passes::simplify_cfg(m);
            if !any {
                break;
            }
        }
    };
    match opt {
        OptLevel::O0 => {}
        OptLevel::O1 => {
            basic(m, true);
        }
        OptLevel::Os => {
            basic(m, true);
            passes::memopt(m);
            passes::dead_slot_elim(m);
            basic(m, true);
        }
        OptLevel::O2 | OptLevel::O3 => {
            basic(m, true);
            let threshold = unroll_threshold(compiler, opt);
            match compiler.vendor {
                Vendor::Gcc => {
                    // GCC: unroll, then inline, then scalar cleanup.
                    passes::unroll(m, threshold);
                    passes::inline(m, 40);
                }
                Vendor::Llvm => {
                    // LLVM: inline first, then unroll.
                    passes::inline(m, 40);
                    passes::unroll(m, threshold);
                }
            }
            basic(m, true);
            passes::memopt(m);
            passes::dead_slot_elim(m);
            basic(m, true);
            passes::memopt(m);
            basic(m, true);
        }
    }
}

/// Stage 4 — post-instrumentation cleanup.
pub fn late_opt_stage(m: &mut Module, opt: OptLevel) {
    if opt == OptLevel::O0 {
        return;
    }
    // Post-instrumentation cleanup must keep checks and loads.
    for _ in 0..2 {
        let mut any = false;
        any |= passes::constfold(m);
        any |= passes::dce(m, false);
        any |= passes::simplify_cfg(m);
        if !any {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Op;
    use ubfuzz_minic::parse;

    fn count_checks(m: &Module) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.instrs)
            .filter(|i| i.op.is_sanitizer_op())
            .count()
    }

    #[test]
    fn gcc_msan_unsupported() {
        let p = parse("int main(void) { return 0; }").unwrap();
        let reg = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Msan), &reg);
        assert!(compile(&p, &cfg).is_err());
    }

    #[test]
    fn asan_inserts_checks_at_o0() {
        let p = parse(
            "int g[4]; int main(void) { int i = 1; g[i] = 3; return g[i]; }",
        )
        .unwrap();
        let reg = DefectRegistry::pristine();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &reg);
        let m = compile(&p, &cfg).unwrap();
        assert!(count_checks(&m) >= 2, "load+store checks: {}", count_checks(&m));
        assert_eq!(m.san.sanitizer, Some(Sanitizer::Asan));
    }

    #[test]
    fn ubsan_inserts_arith_checks() {
        let p = parse(
            "int a; int b; int main(void) { int x = a + b; int y = a / (b + 1); return x + y; }",
        )
        .unwrap();
        let reg = DefectRegistry::pristine();
        let cfg = CompileConfig::dev(Vendor::Llvm, OptLevel::O0, Some(Sanitizer::Ubsan), &reg);
        let m = compile(&p, &cfg).unwrap();
        let arith = m
            .funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.op, Op::UbsanCheckArith { .. } | Op::UbsanCheckDiv { .. }))
            .count();
        assert!(arith >= 3, "adds and div checked: {arith}");
    }

    #[test]
    fn optimization_reduces_instruction_count() {
        let p = parse(
            "int g; int main(void) { int a = 3; int b = 4; int dead = a * b; g = a + b; return g; }",
        )
        .unwrap();
        let reg = DefectRegistry::full();
        let o0 = compile(&p, &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, None, &reg)).unwrap();
        let o2 = compile(&p, &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, None, &reg)).unwrap();
        assert!(o2.instr_count() < o0.instr_count());
    }

    #[test]
    fn defect_application_recorded_in_metadata() {
        // Fig. 1 shape: store through a global pointer variable at -O2.
        let p = parse(
            "int g; int *ptr = &g;
             int main(void) { *ptr = 7; return g; }",
        )
        .unwrap();
        let reg = DefectRegistry::full();
        let m = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &reg),
        )
        .unwrap();
        assert!(
            m.san.applied_defects.iter().any(|(id, _)| *id == "gcc-asan-d01"),
            "gcc-asan-d01 fires on global-pointer stores: {:?}",
            m.san.applied_defects
        );
        // Pristine world: no defects applied.
        let clean = DefectRegistry::pristine();
        let m2 = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &clean),
        )
        .unwrap();
        assert!(m2.san.applied_defects.is_empty());
    }

    #[test]
    fn versions_change_optimization_behavior() {
        let p = parse(
            "int g; int main(void) { for (int i = 0; i < 6; i = i + 1) { g = g + 1; } return g; }",
        )
        .unwrap();
        let reg = DefectRegistry::full();
        let old = CompileConfig {
            compiler: CompilerId { vendor: Vendor::Gcc, version: 6 },
            opt: OptLevel::O2,
            sanitizer: None,
            registry: &reg,
            san_policy: SanPolicy::Full,
        };
        let new = CompileConfig {
            compiler: CompilerId { vendor: Vendor::Gcc, version: 13 },
            opt: OptLevel::O2,
            sanitizer: None,
            registry: &reg,
            san_policy: SanPolicy::Full,
        };
        let m_old = compile(&p, &old).unwrap();
        let m_new = compile(&p, &new).unwrap();
        // GCC ≥ 10 unrolls trip-6 loops at -O2; GCC 6 does not.
        let loops_old = crate::passes::blocks_in_loops(m_old.func("main").unwrap());
        let loops_new = crate::passes::blocks_in_loops(m_new.func("main").unwrap());
        assert!(loops_old.iter().any(|&b| b));
        assert!(!loops_new.iter().any(|&b| b));
    }
}
