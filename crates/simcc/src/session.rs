//! Staged-compile caching: memoizes the sanitizer-independent prefix of the
//! pipeline across a compile session.
//!
//! The campaign's cost model is dominated by compiler invocations: each UB
//! program is compiled across a vendor × level × sanitizer matrix, but the
//! `lower → early-opts` prefix of every one of those invocations depends
//! only on `(program, vendor, version, opt)` — see
//! [`crate::pipeline::compile_prefix`]. A [`CompileSession`] caches that
//! prefix so the matrix re-lowers and re-optimizes each `(compiler, opt)`
//! cell once, then replays only the sanitizer pass and the (short) late
//! cleanup per sanitizer.
//!
//! Correctness does not depend on the cache: every stage is a deterministic
//! function, so `sanitize + late-opts` over a cloned cached prefix is
//! bit-identical to the single-shot [`crate::pipeline::compile`]. The
//! session is `Sync` (mutex-guarded map, atomic counters) so one cache can
//! back every worker of a parallel campaign; sharing changes *which* lookups
//! hit, never what any compile returns.

use crate::ir::{Module, Sanitizer};
use crate::lower::CompileError;
use crate::pipeline::{check_supported, compile_prefix, late_opt_stage, sanitize_stage, CompileConfig};
use crate::target::{CompilerId, OptLevel};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use ubfuzz_minic::{pretty, Program};
use ubfuzz_obs::{self as obs, Stage};

/// A program identity for cache lookups: a hash of the canonical
/// pretty-printed source, plus the source itself so a hash collision can
/// never alias two distinct programs (entries are verified on hit).
///
/// Compute it once per program ([`CompileSession::fingerprint`]) and reuse it
/// across the program's whole compile matrix.
#[derive(Debug, Clone)]
pub struct ProgramFingerprint {
    hash: u64,
    source: String,
}

impl ProgramFingerprint {
    /// Fingerprints `program`.
    pub fn of(program: &Program) -> ProgramFingerprint {
        let source = pretty::print(program);
        let mut h = DefaultHasher::new();
        source.hash(&mut h);
        ProgramFingerprint { hash: h.finish(), source }
    }

    /// A free placeholder for paths that never consult the cache.
    pub fn empty() -> ProgramFingerprint {
        ProgramFingerprint { hash: 0, source: String::new() }
    }

    /// Whether this is the free placeholder (no source captured).
    pub fn source_is_empty(&self) -> bool {
        self.source.is_empty()
    }
}

/// Cache telemetry: lookups served from each cache layer vs. computed.
///
/// `hits`/`misses` count the sanitizer-independent *prefix* layer;
/// `san_hits`/`san_misses` count the *sanitize-stage* layer (only
/// sanitizer-enabled compiles consult it). A sanitize-layer hit skips the
/// prefix lookup entirely, so the two pairs partition different lookup
/// populations — never sum them into one ratio.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Prefix lookups served from the cache.
    pub hits: u64,
    /// Prefix lookups that had to run `lower → early-opts`.
    pub misses: u64,
    /// Sanitize-stage lookups served from the cache.
    pub san_hits: u64,
    /// Sanitize-stage lookups that had to run the sanitizer pass.
    pub san_misses: u64,
}

impl SessionStats {
    /// Fraction of prefix lookups served from the cache (0.0 when idle).
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of sanitize-stage lookups served from the cache (0.0 when
    /// idle).
    pub fn san_reuse_ratio(&self) -> f64 {
        let total = self.san_hits + self.san_misses;
        if total == 0 {
            0.0
        } else {
            self.san_hits as f64 / total as f64
        }
    }
}

impl std::ops::Add for SessionStats {
    type Output = SessionStats;
    fn add(self, rhs: SessionStats) -> SessionStats {
        SessionStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            san_hits: self.san_hits + rhs.san_hits,
            san_misses: self.san_misses + rhs.san_misses,
        }
    }
}

/// Saturating delta between two snapshots of the (monotone) counters —
/// how campaigns report per-run telemetry off a session shared across runs.
impl std::ops::Sub for SessionStats {
    type Output = SessionStats;
    fn sub(self, rhs: SessionStats) -> SessionStats {
        SessionStats {
            hits: self.hits.saturating_sub(rhs.hits),
            misses: self.misses.saturating_sub(rhs.misses),
            san_hits: self.san_hits.saturating_sub(rhs.san_hits),
            san_misses: self.san_misses.saturating_sub(rhs.san_misses),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PrefixKey {
    hash: u64,
    compiler: CompilerId,
    opt: OptLevel,
}

/// One persisted prefix-cache entry: the full key (hash + verifying source)
/// and the cached post-early-opts module.
#[derive(Debug, Clone)]
pub struct PersistedPrefix {
    /// Fingerprint hash of the canonical source.
    pub hash: u64,
    /// Compiler identity of the prefix.
    pub compiler: CompilerId,
    /// Optimization level of the prefix.
    pub opt: OptLevel,
    /// Canonical pretty-printed source (collision guard, as in the
    /// in-memory cache).
    pub source: String,
    /// The cached `lower → early-opts` output.
    pub module: Module,
}

impl PersistedPrefix {
    /// A borrowed view for [`PrefixBacking::persist`].
    pub fn as_entry_ref(&self) -> PrefixEntryRef<'_> {
        PrefixEntryRef {
            hash: self.hash,
            compiler: self.compiler,
            opt: self.opt,
            source: &self.source,
            module: &self.module,
        }
    }
}

/// A borrowed prefix entry — what the session offers on each miss. By
/// reference so the hot miss path pays no clone beyond the cache insert
/// (the backing serializes straight from the borrow).
#[derive(Debug, Clone, Copy)]
pub struct PrefixEntryRef<'a> {
    /// Fingerprint hash of the canonical source.
    pub hash: u64,
    /// Compiler identity of the prefix.
    pub compiler: CompilerId,
    /// Optimization level of the prefix.
    pub opt: OptLevel,
    /// Canonical pretty-printed source.
    pub source: &'a str,
    /// The cached `lower → early-opts` output.
    pub module: &'a Module,
}

/// A persistence sink/source behind the in-memory prefix cache.
///
/// The session stays the single in-process cache; a backing makes it warm
/// across *invocations*: entries a previous process persisted are loaded
/// once when the session is built, and every fresh miss is offered back for
/// persistence. Implementations live outside this crate (the `ubfuzz-store`
/// on-disk store); the contract here is deliberately minimal so the session
/// never learns about files, formats or recovery.
///
/// Correctness note: a backing can only pre-populate or re-observe entries
/// of the deterministic `compile_prefix` function, so — like the cache
/// itself — it can change *when* a prefix is computed, never what a compile
/// returns.
pub trait PrefixBacking: Send + Sync + std::fmt::Debug {
    /// Entries persisted by previous invocations. Called once, when the
    /// session attaches the backing.
    fn load(&self) -> Vec<PersistedPrefix>;

    /// Offers a freshly computed prefix for persistence. Called after each
    /// miss, outside the cache lock; implementations are expected to
    /// dedup re-offers (epoch eviction can recompute a persisted entry).
    fn persist(&self, entry: PrefixEntryRef<'_>);

    /// Observes a cache hit on `(hash, compiler, opt)` — recency feedback
    /// for backings with a byte budget (least-recently-hit eviction).
    /// Default: ignored.
    fn note_hit(&self, hash: u64, compiler: CompilerId, opt: OptLevel) {
        let _ = (hash, compiler, opt);
    }
}

/// The sanitize-stage cache key: a prefix key extended by the sanitizer,
/// the defect-registry epoch and the partial-sanitization site-subset
/// fingerprint (the sanitizer pass reads all three). `subset_fp` is 0 for
/// [`crate::partition::SanPolicy::Full`], so full-policy keys are unchanged;
/// distinct policies get distinct fingerprints and can never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SanKey {
    hash: u64,
    compiler: CompilerId,
    opt: OptLevel,
    sanitizer: Sanitizer,
    registry_fp: u64,
    subset_fp: u64,
}

/// One persisted sanitize-stage entry: the full key (hash + verifying
/// source + sanitizer + registry epoch) and the cached *post-sanitize*
/// module (late opts still run per lookup — they are cheap and depend only
/// on the opt level already in the key).
#[derive(Debug, Clone)]
pub struct PersistedSanitized {
    /// Fingerprint hash of the canonical source.
    pub hash: u64,
    /// Compiler identity.
    pub compiler: CompilerId,
    /// Optimization level.
    pub opt: OptLevel,
    /// The sanitizer the module was instrumented with.
    pub sanitizer: Sanitizer,
    /// Fingerprint of the defect-registry epoch the pass ran under
    /// ([`crate::defects::DefectRegistry::fingerprint`]).
    pub registry_fp: u64,
    /// Site-subset fingerprint of the partial-sanitization policy the pass
    /// ran under ([`crate::partition::SanPolicy::subset_fingerprint`]; 0 for
    /// the full policy).
    pub subset_fp: u64,
    /// Canonical pretty-printed source (collision guard).
    pub source: String,
    /// The cached post-sanitize module.
    pub module: Module,
}

impl PersistedSanitized {
    /// A borrowed view for [`SanitizedBacking::persist`].
    pub fn as_entry_ref(&self) -> SanitizedEntryRef<'_> {
        SanitizedEntryRef {
            hash: self.hash,
            compiler: self.compiler,
            opt: self.opt,
            sanitizer: self.sanitizer,
            registry_fp: self.registry_fp,
            subset_fp: self.subset_fp,
            source: &self.source,
            module: &self.module,
        }
    }
}

/// A borrowed sanitize-stage entry — what the session offers on each
/// sanitize-layer miss.
#[derive(Debug, Clone, Copy)]
pub struct SanitizedEntryRef<'a> {
    /// Fingerprint hash of the canonical source.
    pub hash: u64,
    /// Compiler identity.
    pub compiler: CompilerId,
    /// Optimization level.
    pub opt: OptLevel,
    /// The sanitizer the module was instrumented with.
    pub sanitizer: Sanitizer,
    /// Fingerprint of the defect-registry epoch.
    pub registry_fp: u64,
    /// Site-subset fingerprint of the partial-sanitization policy (0 for
    /// the full policy).
    pub subset_fp: u64,
    /// Canonical pretty-printed source.
    pub source: &'a str,
    /// The cached post-sanitize module.
    pub module: &'a Module,
}

/// A persistence sink/source behind the in-memory sanitize-stage cache —
/// the [`PrefixBacking`] contract, one stage later. Same correctness
/// argument: `sanitize_stage` is deterministic in the key, so a backing
/// changes *when* the sanitizer pass runs, never what a compile returns.
pub trait SanitizedBacking: Send + Sync + std::fmt::Debug {
    /// Entries persisted by previous invocations. Called once, at attach.
    fn load(&self) -> Vec<PersistedSanitized>;

    /// Offers a freshly sanitized module for persistence. Called after
    /// each sanitize-layer miss, outside the cache lock; implementations
    /// dedup re-offers.
    fn persist(&self, entry: SanitizedEntryRef<'_>);

    /// Observes a sanitize-layer cache hit — recency feedback for byte-
    /// budgeted backings. Default: ignored.
    fn note_hit(&self, entry: SanitizedEntryRef<'_>) {
        let _ = entry;
    }
}

/// Entries sharing a [`PrefixKey`] (or a [`SanKey`]); the stored source
/// disambiguates the (astronomically unlikely) fingerprint collision.
type PrefixBucket = Vec<(String, Module)>;

/// A shared compilation session with a memoized pipeline prefix.
///
/// Thread-safe; a disabled session ([`CompileSession::disabled`]) degrades to
/// plain [`crate::pipeline::compile`] and records no telemetry, which is what
/// cache-ablation comparisons toggle.
#[derive(Debug)]
pub struct CompileSession {
    /// `None` disables caching entirely.
    cache: Option<Mutex<HashMap<PrefixKey, PrefixBucket>>>,
    /// The sanitize-stage layer: `(prefix key, sanitizer, registry epoch)
    /// → post-sanitize module`. Enabled exactly when `cache` is.
    san_cache: Option<Mutex<HashMap<SanKey, PrefixBucket>>>,
    /// Key budget (≈ entry budget: buckets exceed one entry only on a
    /// fingerprint collision); exceeding it clears the map wholesale (epoch
    /// eviction — cross-program reuse is negligible, so old epochs are dead
    /// weight).
    capacity: usize,
    /// Sanitize-layer key budget: up to [`CompileSession::SAN_VARIANTS`]
    /// sanitizer variants per prefix key, same epoch-eviction policy.
    san_capacity: usize,
    /// Cross-invocation persistence, when attached
    /// ([`CompileSession::with_backing`]).
    backing: Option<std::sync::Arc<dyn PrefixBacking>>,
    /// Sanitize-layer persistence ([`CompileSession::with_backings`]).
    san_backing: Option<std::sync::Arc<dyn SanitizedBacking>>,
    /// Entries pre-populated from the backing at construction.
    preloaded: usize,
    /// Sanitize-layer entries pre-populated at construction.
    san_preloaded: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    san_hits: AtomicU64,
    san_misses: AtomicU64,
}

impl Default for CompileSession {
    fn default() -> CompileSession {
        CompileSession::new()
    }
}

impl CompileSession {
    /// Default entry budget: comfortably above one program's full matrix
    /// (2 vendors × 5 levels) times the in-flight program window of any
    /// realistic worker count.
    pub const DEFAULT_CAPACITY: usize = 2048;

    /// Sanitizer variants per prefix key (ASan/UBSan/MSan) — the factor
    /// between a prefix key budget and the sanitize-layer key budget.
    pub const SAN_VARIANTS: usize = 3;

    /// An enabled session with the default capacity.
    pub fn new() -> CompileSession {
        CompileSession::with_capacity(CompileSession::DEFAULT_CAPACITY)
    }

    /// An enabled session holding at most `capacity` cached prefixes (and
    /// [`CompileSession::SAN_VARIANTS`]`× capacity` sanitized modules).
    pub fn with_capacity(capacity: usize) -> CompileSession {
        let capacity = capacity.max(1);
        CompileSession {
            cache: Some(Mutex::new(HashMap::new())),
            san_cache: Some(Mutex::new(HashMap::new())),
            capacity,
            san_capacity: capacity.saturating_mul(CompileSession::SAN_VARIANTS),
            backing: None,
            san_backing: None,
            preloaded: 0,
            san_preloaded: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            san_hits: AtomicU64::new(0),
            san_misses: AtomicU64::new(0),
        }
    }

    /// An enabled session warmed from (and persisting to) `backing`.
    ///
    /// Entries the backing loads are pre-populated into the cache — leaving
    /// at least a quarter of `capacity` free, so a backing grown to (or
    /// beyond) this session's budget cannot put the map at the epoch-evict
    /// threshold where the very first new-key miss would wipe the warm
    /// entries wholesale — and every subsequent miss is offered back
    /// through [`PrefixBacking::persist`]. Lookups served from preloaded
    /// entries count as ordinary hits: a second invocation whose capacity
    /// covers the store reports zero misses.
    pub fn with_backing(
        capacity: usize,
        backing: std::sync::Arc<dyn PrefixBacking>,
    ) -> CompileSession {
        CompileSession::with_backings(capacity, backing, None)
    }

    /// [`CompileSession::with_backing`] plus an optional sanitize-stage
    /// backing, warmed and persisted with the same headroom discipline
    /// (the sanitize layer's budget is `SAN_VARIANTS ×` the prefix one).
    pub fn with_backings(
        capacity: usize,
        backing: std::sync::Arc<dyn PrefixBacking>,
        san_backing: Option<std::sync::Arc<dyn SanitizedBacking>>,
    ) -> CompileSession {
        let mut session = CompileSession::with_capacity(capacity);
        let preload_budget = CompileSession::preload_budget(session.capacity);
        let mut map = HashMap::new();
        let mut loaded = 0usize;
        for entry in backing.load() {
            if loaded >= preload_budget {
                break;
            }
            let key =
                PrefixKey { hash: entry.hash, compiler: entry.compiler, opt: entry.opt };
            let bucket: &mut PrefixBucket = map.entry(key).or_default();
            if !bucket.iter().any(|(src, _)| *src == entry.source) {
                bucket.push((entry.source, entry.module));
                loaded += 1;
            }
        }
        session.cache = Some(Mutex::new(map));
        session.preloaded = loaded;
        session.backing = Some(backing);
        if let Some(san_backing) = san_backing {
            let san_budget = CompileSession::preload_budget(session.san_capacity);
            let mut san_map = HashMap::new();
            let mut san_loaded = 0usize;
            for entry in san_backing.load() {
                if san_loaded >= san_budget {
                    break;
                }
                let key = SanKey {
                    hash: entry.hash,
                    compiler: entry.compiler,
                    opt: entry.opt,
                    sanitizer: entry.sanitizer,
                    registry_fp: entry.registry_fp,
                    subset_fp: entry.subset_fp,
                };
                let bucket: &mut PrefixBucket = san_map.entry(key).or_default();
                if !bucket.iter().any(|(src, _)| *src == entry.source) {
                    bucket.push((entry.source, entry.module));
                    san_loaded += 1;
                }
            }
            session.san_cache = Some(Mutex::new(san_map));
            session.san_preloaded = san_loaded;
            session.san_backing = Some(san_backing);
        }
        session
    }

    /// A pass-through session: every compile runs the full pipeline and no
    /// telemetry is recorded.
    pub fn disabled() -> CompileSession {
        CompileSession {
            cache: None,
            san_cache: None,
            capacity: 0,
            san_capacity: 0,
            backing: None,
            san_backing: None,
            preloaded: 0,
            san_preloaded: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            san_hits: AtomicU64::new(0),
            san_misses: AtomicU64::new(0),
        }
    }

    /// How many entries the backing pre-populated (0 without a backing).
    pub fn preloaded(&self) -> usize {
        self.preloaded
    }

    /// How many sanitize-stage entries the backing pre-populated.
    pub fn san_preloaded(&self) -> usize {
        self.san_preloaded
    }

    /// How many backing entries a session of `capacity` will pre-populate
    /// (capacity minus a quarter of headroom — see
    /// [`CompileSession::with_backing`]). Public so backings that pay per
    /// loaded entry (on-disk stores decoding modules) can stop early.
    pub fn preload_budget(capacity: usize) -> usize {
        let capacity = capacity.max(1);
        capacity.saturating_sub((capacity / 4).max(1)).max(1)
    }

    /// The smallest session capacity whose [`CompileSession::preload_budget`]
    /// covers `entries` — how a caller that wants *all* of a store's
    /// entries warm composes the eviction headroom on top of its key bound
    /// instead of ceding a quarter of it.
    pub fn capacity_for_preload(entries: usize) -> usize {
        let mut capacity = entries.max(1).saturating_mul(4).div_ceil(3);
        while CompileSession::preload_budget(capacity) < entries {
            capacity += 1;
        }
        capacity
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Fingerprints a program for [`CompileSession::compile_fp`].
    pub fn fingerprint(program: &Program) -> ProgramFingerprint {
        ProgramFingerprint::of(program)
    }

    /// Fingerprints `program` only when this session caches; disabled
    /// sessions never read the fingerprint, so skip the pretty-print+hash.
    pub fn fingerprint_for(&self, program: &Program) -> ProgramFingerprint {
        if self.enabled() {
            ProgramFingerprint::of(program)
        } else {
            ProgramFingerprint::empty()
        }
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            san_hits: self.san_hits.load(Ordering::Relaxed),
            san_misses: self.san_misses.load(Ordering::Relaxed),
        }
    }

    /// Compiles `program` under `cfg`, reusing the cached prefix when
    /// available. Output is bit-identical to [`crate::pipeline::compile`].
    ///
    /// # Errors
    ///
    /// Exactly the failures of [`crate::pipeline::compile`]: frontend-subset
    /// violations and unsupported sanitizer combinations.
    pub fn compile(
        &self,
        program: &Program,
        cfg: &CompileConfig<'_>,
    ) -> Result<Module, CompileError> {
        self.compile_fp(&ProgramFingerprint::of(program), program, cfg)
    }

    /// [`CompileSession::compile`] with a precomputed fingerprint — use this
    /// on the matrix hot path so the program is printed and hashed once, not
    /// once per cell.
    pub fn compile_fp(
        &self,
        fp: &ProgramFingerprint,
        program: &Program,
        cfg: &CompileConfig<'_>,
    ) -> Result<Module, CompileError> {
        check_supported(cfg)?;
        let mut module = match cfg.sanitizer {
            // Sanitizer-enabled compiles go through the sanitize-stage
            // layer (which consults the prefix layer on its misses).
            Some(sanitizer) if self.san_cache.is_some() => {
                self.sanitized(fp, program, cfg, sanitizer)?
            }
            // No sanitizer: `sanitize_stage` is a no-op, the prefix IS the
            // pre-late-opts module. (Disabled sessions land here too and
            // fall through to the uncached pipeline inside `prefix`.)
            _ => {
                let mut module = self.prefix(fp, program, cfg.compiler, cfg.opt)?;
                obs::time(Stage::Sanitize, 0, || sanitize_stage(&mut module, cfg));
                module
            }
        };
        obs::time(Stage::LateOpt, 0, || late_opt_stage(&mut module, cfg.opt));
        Ok(module)
    }

    /// The memoized sanitize stage: post-sanitize module by
    /// `(prefix key, sanitizer, registry epoch)`. Only called with the
    /// cache enabled and a sanitizer configured.
    fn sanitized(
        &self,
        fp: &ProgramFingerprint,
        program: &Program,
        cfg: &CompileConfig<'_>,
        sanitizer: Sanitizer,
    ) -> Result<Module, CompileError> {
        let cache = self.san_cache.as_ref().expect("sanitize cache enabled");
        let key = SanKey {
            hash: fp.hash,
            compiler: cfg.compiler,
            opt: cfg.opt,
            sanitizer,
            registry_fp: cfg.registry.fingerprint(),
            subset_fp: cfg.san_policy.subset_fingerprint(),
        };
        if let Some(entries) = cache.lock().expect("sanitize cache lock").get(&key) {
            if let Some((_, module)) = entries.iter().find(|(src, _)| *src == fp.source) {
                self.san_hits.fetch_add(1, Ordering::Relaxed);
                obs::count("san_hits", 1);
                let module = module.clone();
                // Recency feedback outside the lock (byte-budgeted
                // backings rank eviction by last hit).
                if let Some(backing) = &self.san_backing {
                    backing.note_hit(SanitizedEntryRef {
                        hash: key.hash,
                        compiler: key.compiler,
                        opt: key.opt,
                        sanitizer,
                        registry_fp: key.registry_fp,
                        subset_fp: key.subset_fp,
                        source: &fp.source,
                        module: &module,
                    });
                }
                return Ok(module);
            }
        }
        self.san_misses.fetch_add(1, Ordering::Relaxed);
        obs::count("san_misses", 1);
        let mut module = self.prefix(fp, program, cfg.compiler, cfg.opt)?;
        obs::time(Stage::Sanitize, 0, || sanitize_stage(&mut module, cfg));
        {
            let mut map = cache.lock().expect("sanitize cache lock");
            if map.len() >= self.san_capacity {
                map.clear();
            }
            let bucket = map.entry(key).or_default();
            if !bucket.iter().any(|(src, _)| *src == fp.source) {
                bucket.push((fp.source.clone(), module.clone()));
            }
        }
        if let Some(backing) = &self.san_backing {
            backing.persist(SanitizedEntryRef {
                hash: key.hash,
                compiler: key.compiler,
                opt: key.opt,
                sanitizer,
                registry_fp: key.registry_fp,
                subset_fp: key.subset_fp,
                source: &fp.source,
                module: &module,
            });
        }
        Ok(module)
    }

    /// The memoized `lower → early-opts` prefix.
    fn prefix(
        &self,
        fp: &ProgramFingerprint,
        program: &Program,
        compiler: CompilerId,
        opt: OptLevel,
    ) -> Result<Module, CompileError> {
        let Some(cache) = &self.cache else {
            return obs::time(Stage::PrefixCompile, 0, || compile_prefix(program, compiler, opt));
        };
        let key = PrefixKey { hash: fp.hash, compiler, opt };
        let cached = cache
            .lock()
            .expect("prefix cache lock")
            .get(&key)
            .and_then(|entries| entries.iter().find(|(src, _)| *src == fp.source))
            .map(|(_, module)| module.clone());
        if let Some(module) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::count("prefix_hits", 1);
            // Recency feedback, outside the cache lock.
            if let Some(backing) = &self.backing {
                backing.note_hit(fp.hash, compiler, opt);
            }
            return Ok(module);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::count("prefix_misses", 1);
        let module = obs::time(Stage::PrefixCompile, 0, || compile_prefix(program, compiler, opt))?;
        {
            let mut map = cache.lock().expect("prefix cache lock");
            if map.len() >= self.capacity {
                map.clear();
            }
            // Re-check under the insert lock: two workers can race the same
            // cold key, and the loser must not push a duplicate entry.
            let bucket = map.entry(key).or_default();
            if !bucket.iter().any(|(src, _)| *src == fp.source) {
                bucket.push((fp.source.clone(), module.clone()));
            }
        }
        // Persist outside the cache lock: the backing does file I/O and
        // must not serialize other workers' lookups behind it. Borrowed
        // fields: the miss path pays no clone beyond the cache insert.
        if let Some(backing) = &self.backing {
            backing.persist(PrefixEntryRef {
                hash: fp.hash,
                compiler,
                opt,
                source: &fp.source,
                module: &module,
            });
        }
        Ok(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defects::DefectRegistry;
    use crate::ir::Sanitizer;
    use crate::pipeline::compile;
    use crate::target::Vendor;
    use ubfuzz_minic::parse;

    fn program() -> Program {
        parse(
            "int g[4]; int main(void) { int i = 1; g[i] = 3; return g[i] + g[0] / (i + 1); }",
        )
        .unwrap()
    }

    #[test]
    fn cached_compile_matches_uncached_across_matrix() {
        let p = program();
        let reg = DefectRegistry::full();
        let session = CompileSession::new();
        let fp = CompileSession::fingerprint(&p);
        for vendor in Vendor::ALL {
            for opt in OptLevel::ALL {
                for sanitizer in
                    [None, Some(Sanitizer::Asan), Some(Sanitizer::Ubsan), Some(Sanitizer::Msan)]
                {
                    let cfg = CompileConfig {
                        compiler: CompilerId::dev(vendor),
                        opt,
                        sanitizer,
                        registry: &reg,
                        san_policy: crate::partition::SanPolicy::Full,
                    };
                    let direct = compile(&p, &cfg);
                    let cached = session.compile_fp(&fp, &p, &cfg);
                    match (direct, cached) {
                        (Ok(a), Ok(b)) => assert_eq!(a, b, "{vendor} {opt} {sanitizer:?}"),
                        (Err(_), Err(_)) => {}
                        (a, b) => panic!("outcome mismatch: {a:?} vs {b:?}"),
                    }
                }
            }
        }
        let stats = session.stats();
        // 2 vendors × 5 levels distinct prefixes, each first missed by its
        // `None`-sanitizer cell; every sanitizer cell is a sanitize-layer
        // miss that then *hits* the resident prefix (GCC×MSan never gets
        // past check_supported).
        assert_eq!(stats.misses, 10, "{stats:?}");
        assert!(stats.hits > 0, "{stats:?}");
        assert!(stats.reuse_ratio() > 0.5, "{stats:?}");
        assert_eq!(stats.san_misses, 25, "every sanitizer cell is distinct: {stats:?}");
        assert_eq!(stats.san_hits, 0, "{stats:?}");
        // Replaying one sanitizer cell is now a pure sanitize-layer hit —
        // no prefix lookup, no sanitizer pass, identical output.
        let cfg = CompileConfig::dev(Vendor::Llvm, OptLevel::O2, Some(Sanitizer::Asan), &reg);
        assert_eq!(session.compile_fp(&fp, &p, &cfg).unwrap(), compile(&p, &cfg).unwrap());
        let replay = session.stats();
        assert_eq!(replay.san_hits, 1, "{replay:?}");
        assert_eq!(replay.hits, stats.hits, "sanitize hit skips the prefix layer");
    }

    #[test]
    fn disabled_session_is_pass_through() {
        let p = program();
        let reg = DefectRegistry::full();
        let session = CompileSession::disabled();
        let cfg = CompileConfig::dev(Vendor::Llvm, OptLevel::O2, Some(Sanitizer::Asan), &reg);
        assert!(!session.enabled());
        assert_eq!(session.compile(&p, &cfg).unwrap(), compile(&p, &cfg).unwrap());
        assert_eq!(session.stats(), SessionStats::default());
    }

    #[test]
    fn unsupported_combination_still_fails() {
        let p = program();
        let reg = DefectRegistry::full();
        let session = CompileSession::new();
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Msan), &reg);
        assert!(session.compile(&p, &cfg).is_err());
        assert_eq!(session.stats(), SessionStats::default(), "no prefix work for rejects");
    }

    #[test]
    fn capacity_overflow_clears_and_stays_correct() {
        let reg = DefectRegistry::full();
        let session = CompileSession::with_capacity(2);
        for src in ["int main(void) { return 0; }", "int main(void) { return 1; }",
                    "int main(void) { return 2; }", "int main(void) { return 0; }"]
        {
            let p = parse(src).unwrap();
            let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O1, None, &reg);
            assert_eq!(session.compile(&p, &cfg).unwrap(), compile(&p, &cfg).unwrap());
        }
        let stats = session.stats();
        assert_eq!(stats.hits + stats.misses, 4);
    }

    #[test]
    fn stats_add_sub_and_ratio() {
        let a = SessionStats { hits: 3, misses: 1, ..Default::default() };
        let b = SessionStats { hits: 1, misses: 3, ..Default::default() };
        assert_eq!(a + b, SessionStats { hits: 4, misses: 4, ..Default::default() });
        assert_eq!((a + b).reuse_ratio(), 0.5);
        assert_eq!(SessionStats::default().reuse_ratio(), 0.0);
        assert_eq!((a + b) - a, b, "snapshot delta recovers the increment");
        assert_eq!(a - (a + b), SessionStats::default(), "delta saturates, never wraps");
    }

    #[test]
    fn epoch_eviction_forgets_old_prefixes_and_accounts_for_it() {
        // Capacity 2: the third distinct prefix key triggers a wholesale
        // epoch clear, so the first program must miss again on replay while
        // a post-clear resident still hits.
        let reg = DefectRegistry::full();
        let session = CompileSession::with_capacity(2);
        let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O1, None, &reg);
        let a = parse("int main(void) { return 0; }").unwrap();
        let b = parse("int main(void) { return 1; }").unwrap();
        let c = parse("int main(void) { return 2; }").unwrap();
        session.compile(&a, &cfg).unwrap(); // miss, {a}
        session.compile(&b, &cfg).unwrap(); // miss, {a, b}
        assert_eq!(session.stats(), SessionStats { hits: 0, misses: 2, ..Default::default() });
        session.compile(&a, &cfg).unwrap(); // hit while resident
        assert_eq!(session.stats(), SessionStats { hits: 1, misses: 2, ..Default::default() });
        session.compile(&c, &cfg).unwrap(); // miss; at capacity → epoch clear, {c}
        assert_eq!(session.stats(), SessionStats { hits: 1, misses: 3, ..Default::default() });
        session.compile(&a, &cfg).unwrap(); // evicted with its epoch → miss again
        assert_eq!(session.stats(), SessionStats { hits: 1, misses: 4, ..Default::default() });
        session.compile(&c, &cfg).unwrap(); // the new epoch's resident still hits
        assert_eq!(session.stats(), SessionStats { hits: 2, misses: 4, ..Default::default() });
        // Eviction is invisible to outputs.
        assert_eq!(session.compile(&a, &cfg).unwrap(), compile(&a, &cfg).unwrap());
    }

    /// An in-memory backing: what `ubfuzz-store` does with a file, minus
    /// the file.
    #[derive(Debug, Default)]
    struct MemBacking {
        entries: Mutex<Vec<PersistedPrefix>>,
    }

    impl PrefixBacking for MemBacking {
        fn load(&self) -> Vec<PersistedPrefix> {
            self.entries.lock().unwrap().clone()
        }

        fn persist(&self, entry: PrefixEntryRef<'_>) {
            let mut entries = self.entries.lock().unwrap();
            if !entries.iter().any(|e| {
                e.hash == entry.hash
                    && e.compiler == entry.compiler
                    && e.opt == entry.opt
                    && e.source == entry.source
            }) {
                entries.push(PersistedPrefix {
                    hash: entry.hash,
                    compiler: entry.compiler,
                    opt: entry.opt,
                    source: entry.source.to_string(),
                    module: entry.module.clone(),
                });
            }
        }
    }

    /// An in-memory sanitize-stage backing, mirroring `MemBacking`.
    #[derive(Debug, Default)]
    struct MemSanBacking {
        entries: Mutex<Vec<PersistedSanitized>>,
        hits: Mutex<u64>,
    }

    impl SanitizedBacking for MemSanBacking {
        fn load(&self) -> Vec<PersistedSanitized> {
            self.entries.lock().unwrap().clone()
        }

        fn persist(&self, entry: SanitizedEntryRef<'_>) {
            let mut entries = self.entries.lock().unwrap();
            if !entries.iter().any(|e| {
                e.hash == entry.hash
                    && e.compiler == entry.compiler
                    && e.opt == entry.opt
                    && e.sanitizer == entry.sanitizer
                    && e.registry_fp == entry.registry_fp
                    && e.subset_fp == entry.subset_fp
                    && e.source == entry.source
            }) {
                entries.push(PersistedSanitized {
                    hash: entry.hash,
                    compiler: entry.compiler,
                    opt: entry.opt,
                    sanitizer: entry.sanitizer,
                    registry_fp: entry.registry_fp,
                    subset_fp: entry.subset_fp,
                    source: entry.source.to_string(),
                    module: entry.module.clone(),
                });
            }
        }

        fn note_hit(&self, _entry: SanitizedEntryRef<'_>) {
            *self.hits.lock().unwrap() += 1;
        }
    }

    #[test]
    fn sanitize_layer_persists_and_warm_starts_without_touching_the_prefix() {
        let reg = DefectRegistry::full();
        let p = program();
        let cfg = CompileConfig::dev(Vendor::Llvm, OptLevel::O2, Some(Sanitizer::Ubsan), &reg);
        let prefix = std::sync::Arc::new(MemBacking::default());
        let san = std::sync::Arc::new(MemSanBacking::default());

        // Cold: a sanitize miss that computes (and persists) both layers.
        let first =
            CompileSession::with_backings(64, prefix.clone(), Some(san.clone()));
        assert_eq!(first.san_preloaded(), 0);
        let out_first = first.compile(&p, &cfg).unwrap();
        assert_eq!(
            first.stats(),
            SessionStats { hits: 0, misses: 1, san_hits: 0, san_misses: 1 }
        );
        assert_eq!(san.entries.lock().unwrap().len(), 1);
        assert_eq!(prefix.entries.lock().unwrap().len(), 1);

        // Warm: the sanitized module preloads, the compile is a pure
        // sanitize-layer hit, and the prefix layer is never consulted.
        let second =
            CompileSession::with_backings(64, prefix.clone(), Some(san.clone()));
        assert_eq!(second.san_preloaded(), 1);
        assert_eq!(second.compile(&p, &cfg).unwrap(), out_first);
        assert_eq!(
            second.stats(),
            SessionStats { hits: 0, misses: 0, san_hits: 1, san_misses: 0 }
        );
        assert_eq!(*san.hits.lock().unwrap(), 1, "hit recency reaches the backing");
    }

    #[test]
    fn sanitize_cache_is_keyed_by_registry_epoch() {
        // The same (program, compiler, opt, sanitizer) under different
        // defect registries must not alias: the epoch is part of the key.
        let full = DefectRegistry::full();
        let pristine = DefectRegistry::pristine();
        let p = program();
        let session = CompileSession::new();
        let cfg_full = CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &full);
        let cfg_pristine =
            CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &pristine);
        let a = session.compile(&p, &cfg_full).unwrap();
        let b = session.compile(&p, &cfg_pristine).unwrap();
        assert_eq!(session.stats().san_misses, 2, "distinct epochs, distinct entries");
        assert_eq!(a, compile(&p, &cfg_full).unwrap());
        assert_eq!(b, compile(&p, &cfg_pristine).unwrap());
        // And replays of both hit their own entry.
        assert_eq!(session.compile(&p, &cfg_full).unwrap(), a);
        assert_eq!(session.compile(&p, &cfg_pristine).unwrap(), b);
        assert_eq!(session.stats().san_hits, 2);
    }

    #[test]
    fn sanitize_cache_is_keyed_by_subset_fingerprint() {
        // The same (program, compiler, opt, sanitizer, registry) under
        // different partial-sanitization policies must not alias: the
        // site-subset fingerprint is part of the key.
        use crate::partition::SanPolicy;
        let reg = DefectRegistry::full();
        let p = program();
        let session = CompileSession::new();
        let full = CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &reg);
        let partial = full.clone().with_policy(SanPolicy::Partial { ratio_pm: 400, salt: 7 });
        let none = full.clone().with_policy(SanPolicy::None);
        let a = session.compile(&p, &full).unwrap();
        let b = session.compile(&p, &partial).unwrap();
        let c = session.compile(&p, &none).unwrap();
        assert_eq!(session.stats().san_misses, 3, "distinct subsets, distinct entries");
        assert_eq!(a, compile(&p, &full).unwrap());
        assert_eq!(b, compile(&p, &partial).unwrap());
        assert_eq!(c, compile(&p, &none).unwrap());
        assert!(a.san.skipped_sites.is_empty(), "full policy skips nothing");
        assert!(!c.san.skipped_sites.is_empty(), "none policy records every site");
        // Replays of all three hit their own entry with no cross-subset
        // pollution.
        assert_eq!(session.compile(&p, &full).unwrap(), a);
        assert_eq!(session.compile(&p, &partial).unwrap(), b);
        assert_eq!(session.compile(&p, &none).unwrap(), c);
        assert_eq!(session.stats().san_hits, 3);
        assert_eq!(session.stats().san_misses, 3);
    }

    #[test]
    fn full_ratio_partial_policy_is_byte_identical_to_full() {
        use crate::partition::SanPolicy;
        let reg = DefectRegistry::full();
        let p = program();
        for vendor in Vendor::ALL {
            for opt in OptLevel::ALL {
                for sanitizer in [Sanitizer::Asan, Sanitizer::Ubsan, Sanitizer::Msan] {
                    let full = CompileConfig::dev(vendor, opt, Some(sanitizer), &reg);
                    let saturated = full
                        .clone()
                        .with_policy(SanPolicy::Partial { ratio_pm: 1000, salt: 99 });
                    match (compile(&p, &full), compile(&p, &saturated)) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(a, b, "{vendor} {opt} {sanitizer:?}");
                            assert!(b.san.skipped_sites.is_empty());
                        }
                        (Err(_), Err(_)) => {}
                        (a, b) => panic!("outcome mismatch: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn backed_session_persists_misses_and_preloads_them() {
        let reg = DefectRegistry::full();
        let p = program();
        let cfg = CompileConfig::dev(Vendor::Llvm, OptLevel::O2, Some(Sanitizer::Asan), &reg);
        let backing = std::sync::Arc::new(MemBacking::default());

        // First "invocation": cold, misses once, persists the prefix.
        let first = CompileSession::with_backing(64, backing.clone());
        assert_eq!(first.preloaded(), 0);
        let out_first = first.compile(&p, &cfg).unwrap();
        // Sanitized compile with no sanitize backing: the san layer misses
        // once and falls through to the prefix layer, which also misses.
        assert_eq!(first.stats(), SessionStats { hits: 0, misses: 1, san_hits: 0, san_misses: 1 });
        assert_eq!(backing.entries.lock().unwrap().len(), 1);

        // Second "invocation": the backing pre-populates the cache, so the
        // same compile is a pure prefix hit and output is unchanged.
        let second = CompileSession::with_backing(64, backing.clone());
        assert_eq!(second.preloaded(), 1);
        assert_eq!(second.compile(&p, &cfg).unwrap(), out_first);
        assert_eq!(second.stats(), SessionStats { hits: 1, misses: 0, san_hits: 0, san_misses: 1 });

        // A backing at/above the capacity preloads only up to the headroom
        // budget (no instant epoch eviction), and stays correct.
        for src in ["int main(void) { return 1; }", "int main(void) { return 2; }"] {
            let q = parse(src).unwrap();
            second.compile(&q, &cfg).unwrap();
        }
        assert_eq!(backing.entries.lock().unwrap().len(), 3);
        let tiny = CompileSession::with_backing(2, backing.clone());
        assert_eq!(tiny.preloaded(), 1, "preload leaves eviction headroom");
        assert_eq!(tiny.compile(&p, &cfg).unwrap(), compile(&p, &cfg).unwrap());
    }

    #[test]
    fn capacity_for_preload_inverts_the_budget() {
        for entries in [0usize, 1, 2, 3, 7, 100, 2048, 1 << 20] {
            let capacity = CompileSession::capacity_for_preload(entries);
            assert!(
                CompileSession::preload_budget(capacity) >= entries,
                "capacity {capacity} too small for {entries} entries"
            );
        }
    }

    #[test]
    fn preload_headroom_survives_the_first_new_key_miss() {
        // A store grown to the session's capacity must not be wiped by the
        // first miss: preloading stops below the epoch-evict threshold.
        let reg = DefectRegistry::full();
        let cfg = CompileConfig::dev(Vendor::Llvm, OptLevel::O1, None, &reg);
        let backing = std::sync::Arc::new(MemBacking::default());
        let warmup = CompileSession::with_backing(64, backing.clone());
        let warm_programs: Vec<Program> = (0..4)
            .map(|i| parse(&format!("int main(void) {{ return {i}; }}")).unwrap())
            .collect();
        for p in &warm_programs {
            warmup.compile(p, &cfg).unwrap();
        }
        drop(warmup);

        // Capacity exactly the store size: preload leaves headroom, so a
        // new program's miss inserts without clearing the warm entries.
        let session = CompileSession::with_backing(4, backing);
        assert_eq!(session.preloaded(), 3);
        let fresh = parse("int main(void) { return 40 + 2; }").unwrap();
        session.compile(&fresh, &cfg).unwrap();
        assert_eq!(session.stats(), SessionStats { hits: 0, misses: 1, ..Default::default() });
        for p in &warm_programs[..3] {
            session.compile(p, &cfg).unwrap();
        }
        assert_eq!(
            session.stats(),
            SessionStats { hits: 3, misses: 1, ..Default::default() },
            "preloaded entries must survive the first miss"
        );
    }

    #[test]
    fn disabled_session_accounts_nothing_across_a_matrix() {
        // The pass-through path must not touch the counters no matter how
        // many compiles flow through it — uncached campaign telemetry
        // reads exactly zero, which the cache-ablation comparisons rely on.
        let p = program();
        let reg = DefectRegistry::full();
        let session = CompileSession::disabled();
        let fp = session.fingerprint_for(&p);
        let mut compiles = 0;
        for vendor in Vendor::ALL {
            for opt in OptLevel::ALL {
                for sanitizer in [None, Some(Sanitizer::Asan), Some(Sanitizer::Ubsan)] {
                    let cfg = CompileConfig::dev(vendor, opt, sanitizer, &reg);
                    assert_eq!(
                        session.compile_fp(&fp, &p, &cfg).unwrap(),
                        compile(&p, &cfg).unwrap(),
                        "{vendor} {opt} {sanitizer:?}"
                    );
                    compiles += 1;
                }
            }
        }
        assert_eq!(compiles, 30);
        assert_eq!(session.stats(), SessionStats::default(), "no telemetry when disabled");
        // And the disabled fingerprint is the free placeholder.
        assert!(fp.source_is_empty(), "disabled sessions skip the pretty-print");
    }
}
