//! AST → IR lowering (the compiler frontend).
//!
//! Performs the little constant folding real frontends do even at `-O0` —
//! which, as the paper notes in Challenge 2, is already enough to optimize
//! some UB away before any sanitizer pass runs.

use crate::ir::*;
use std::collections::HashMap;
use ubfuzz_minic::ast::{self, BinOp, Expr, ExprKind, Init, Stmt, StmtKind, UnOp};
use ubfuzz_minic::typeck::{typecheck, TypeMap};
use ubfuzz_minic::types::{IntType, Type};
use ubfuzz_minic::{Loc, Program};

/// A compilation failure (invalid program for this frontend).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Lowers a type-correct program to an IR module (no sanitizer, no
/// optimization — the raw `-O0` frontend output).
pub fn lower(program: &Program) -> Result<Module, CompileError> {
    let tmap = typecheck(program)
        .map_err(|e| CompileError { message: format!("type error: {e}") })?;
    let mut globals = Vec::new();
    let mut gids = HashMap::new();
    for (i, g) in program.globals.iter().enumerate() {
        gids.insert(g.name.clone(), i);
    }
    for g in &program.globals {
        let size = g.ty.size_of(&program.structs) as u32;
        let (elem_size, elem_count) = match &g.ty {
            Type::Array(elem, n) => (elem.size_of(&program.structs) as u32, *n as u32),
            _ => (size.max(1), 1),
        };
        let mut init = vec![0u8; size as usize];
        let mut relocs = Vec::new();
        if let Some(i) = &g.init {
            const_init(program, &gids, i, &g.ty, 0, &mut init, &mut relocs)?;
        }
        globals.push(GlobalDef { name: g.name.clone(), size, init, relocs, elem_size, elem_count });
    }
    let mut funcs = Vec::new();
    for f in &program.functions {
        funcs.push(lower_func(program, &tmap, &gids, f)?);
    }
    Ok(Module { globals, funcs, san: SanMeta::default(), build: None })
}

/// Constant-evaluated initializer values.
enum CVal {
    Int(i128),
    Addr(usize, i64),
}

fn const_expr(
    program: &Program,
    gids: &HashMap<String, usize>,
    e: &Expr,
) -> Result<CVal, CompileError> {
    let err = |m: &str| CompileError { message: format!("non-constant initializer: {m}") };
    match &e.kind {
        ExprKind::IntLit(v, _) => Ok(CVal::Int(*v)),
        ExprKind::Unary(op, a) => {
            let v = match const_expr(program, gids, a)? {
                CVal::Int(v) => v,
                CVal::Addr(..) => return Err(err("unary on address")),
            };
            Ok(CVal::Int(match op {
                UnOp::Neg => -v,
                UnOp::BitNot => !v,
                UnOp::Not => i128::from(v == 0),
            }))
        }
        ExprKind::Binary(op, a, b) => {
            let (va, vb) = match (const_expr(program, gids, a)?, const_expr(program, gids, b)?) {
                (CVal::Int(x), CVal::Int(y)) => (x, y),
                _ => return Err(err("address arithmetic")),
            };
            let r = match op {
                BinOp::Add => va.wrapping_add(vb),
                BinOp::Sub => va.wrapping_sub(vb),
                BinOp::Mul => va.wrapping_mul(vb),
                BinOp::BitAnd => va & vb,
                BinOp::BitOr => va | vb,
                BinOp::BitXor => va ^ vb,
                _ => return Err(err("operator in constant")),
            };
            Ok(CVal::Int(r))
        }
        ExprKind::Cast(_, a) => const_expr(program, gids, a),
        ExprKind::AddrOf(a) => const_addr(program, gids, a),
        ExprKind::Var(name) => {
            // A bare global array name decays to its address.
            let gid = *gids.get(name).ok_or_else(|| err("non-global name"))?;
            match &program.globals[gid].ty {
                Type::Array(..) => Ok(CVal::Addr(gid, 0)),
                _ => Err(err("global value read in initializer")),
            }
        }
        _ => Err(err("unsupported construct")),
    }
}

fn const_addr(
    program: &Program,
    gids: &HashMap<String, usize>,
    e: &Expr,
) -> Result<CVal, CompileError> {
    let err = |m: &str| CompileError { message: format!("non-constant address: {m}") };
    match &e.kind {
        ExprKind::Var(name) => {
            let gid = *gids.get(name).ok_or_else(|| err("address of non-global"))?;
            Ok(CVal::Addr(gid, 0))
        }
        ExprKind::Index(base, idx) => {
            let (gid, off) = match const_addr(program, gids, base)? {
                CVal::Addr(g, o) => (g, o),
                CVal::Int(_) => return Err(err("index of integer")),
            };
            let i = match const_expr(program, gids, idx)? {
                CVal::Int(v) => v as i64,
                _ => return Err(err("non-constant index")),
            };
            let elem = match &program.globals[gid].ty {
                Type::Array(e, _) => e.size_of(&program.structs) as i64,
                other => other.size_of(&program.structs) as i64,
            };
            Ok(CVal::Addr(gid, off + i * elem))
        }
        _ => Err(err("unsupported address form")),
    }
}

#[allow(clippy::too_many_arguments)]
fn const_init(
    program: &Program,
    gids: &HashMap<String, usize>,
    init: &Init,
    ty: &Type,
    off: usize,
    out: &mut [u8],
    relocs: &mut Vec<(u32, usize, i64)>,
) -> Result<(), CompileError> {
    match (init, ty) {
        (Init::Expr(e), _) => {
            let size = ty.size_of(&program.structs);
            match const_expr(program, gids, e)? {
                CVal::Int(v) => {
                    let bytes = (v as i64 as u64).to_le_bytes();
                    out[off..off + size.min(8)].copy_from_slice(&bytes[..size.min(8)]);
                }
                CVal::Addr(gid, addend) => {
                    relocs.push((off as u32, gid, addend));
                }
            }
            Ok(())
        }
        (Init::List(items), Type::Array(elem, n)) => {
            let es = elem.size_of(&program.structs);
            for (i, it) in items.iter().take(*n).enumerate() {
                const_init(program, gids, it, elem, off + i * es, out, relocs)?;
            }
            Ok(())
        }
        (Init::List(items), Type::Struct(sidx)) => {
            let mut foff = off;
            for (i, (_, fty)) in program.structs[*sidx].fields.iter().enumerate() {
                if let Some(it) = items.get(i) {
                    const_init(program, gids, it, fty, foff, out, relocs)?;
                }
                foff += fty.size_of(&program.structs);
            }
            Ok(())
        }
        (Init::List(items), _) if items.len() == 1 => {
            const_init(program, gids, &items[0], ty, off, out, relocs)
        }
        _ => Err(CompileError { message: "list initializer for scalar".into() }),
    }
}

// ---------------------------------------------------------------------------

struct FnLower<'p> {
    program: &'p Program,
    tmap: &'p TypeMap,
    gids: &'p HashMap<String, usize>,
    func: Func,
    cur: BlockId,
    /// name → slot index, per scope.
    scopes: Vec<Vec<(String, usize)>>,
    /// (continue target, break target) stack.
    loops: Vec<(BlockId, BlockId)>,
}

/// Lowers a single function.
fn lower_func(
    program: &Program,
    tmap: &TypeMap,
    gids: &HashMap<String, usize>,
    f: &ast::Function,
) -> Result<Func, CompileError> {
    let mut fl = FnLower {
        program,
        tmap,
        gids,
        func: Func {
            name: f.name.clone(),
            params: Vec::new(),
            slots: Vec::new(),
            blocks: vec![Block::default()],
            next_reg: 0,
        },
        cur: 0,
        scopes: vec![Vec::new()],
        loops: Vec::new(),
    };
    // Parameters: incoming registers spilled to slots.
    for (name, ty) in &f.params {
        let r = fl.func.fresh_reg();
        fl.func.params.push(r);
        let slot = fl.new_slot(name, ty);
        let size = fl.sizeof(ty) as u8;
        let addr = fl.emit_value(Op::AddrLocal(slot), Loc::UNKNOWN);
        fl.emit_effect(
            Op::Store { addr: Operand::Reg(addr), val: Operand::Reg(r), size },
            Loc::UNKNOWN,
        );
    }
    fl.lower_block(&f.body)?;
    // Implicit `return 0`.
    if fl.block().term.is_none() {
        fl.block().term = Some(Term::Ret(Some(Operand::Imm(0))));
    }
    // Ensure every block has a terminator (unreachable tails become rets).
    for b in &mut fl.func.blocks {
        if b.term.is_none() {
            b.term = Some(Term::Ret(Some(Operand::Imm(0))));
        }
    }
    Ok(fl.func)
}

impl<'p> FnLower<'p> {
    fn sizeof(&self, ty: &Type) -> usize {
        ty.size_of(&self.program.structs)
    }

    fn block(&mut self) -> &mut Block {
        &mut self.func.blocks[self.cur]
    }

    fn new_block(&mut self) -> BlockId {
        self.func.blocks.push(Block::default());
        self.func.blocks.len() - 1
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn emit(&mut self, instr: Instr) {
        self.func.blocks[self.cur].instrs.push(instr);
    }

    fn emit_value(&mut self, op: Op, loc: Loc) -> RegId {
        let r = self.func.fresh_reg();
        self.emit(Instr::new(r, op, loc));
        r
    }

    fn emit_value_meta(&mut self, op: Op, loc: Loc, meta: Meta) -> RegId {
        let r = self.func.fresh_reg();
        self.emit(Instr { dst: Some(r), op, loc, meta });
        r
    }

    fn emit_effect(&mut self, op: Op, loc: Loc) {
        self.emit(Instr::effect(op, loc));
    }

    fn new_slot(&mut self, name: &str, ty: &Type) -> usize {
        let size = self.sizeof(ty).max(1) as u32;
        self.func.slots.push(Slot {
            name: name.to_string(),
            size,
            scope_depth: self.scopes.len() as u32,
            address_taken: true,
        });
        let idx = self.func.slots.len() - 1;
        self.scopes.last_mut().expect("scope").push((name.to_string(), idx));
        idx
    }

    fn lookup(&self, name: &str) -> Option<Place> {
        for scope in self.scopes.iter().rev() {
            if let Some((_, slot)) = scope.iter().rev().find(|(n, _)| n == name) {
                return Some(Place::Slot(*slot));
            }
        }
        self.gids.get(name).map(|g| Place::Global(*g))
    }

    fn ty_of(&self, e: &Expr) -> Type {
        self.tmap.get(&e.id).cloned().unwrap_or_else(Type::int)
    }

    fn int_ty_of(&self, e: &Expr) -> IntType {
        self.ty_of(e).as_int().unwrap_or(IntType::INT)
    }

    // ---- expressions -----------------------------------------------------

    /// Lowers an expression to a value operand. Frontend-folds constant
    /// binaries (the `-O0` folding the paper mentions).
    fn lower_expr(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v, ty) => Ok(Operand::Imm(ty.wrap(*v) as i64)),
            ExprKind::Var(_) | ExprKind::Index(..) | ExprKind::Member(..) | ExprKind::Arrow(..) => {
                let ty = self.ty_of(e);
                match ty {
                    Type::Array(..) => {
                        // Decay: the address is the value.
                        let (addr, _) = self.lower_place(e)?;
                        Ok(addr)
                    }
                    _ => {
                        let (addr, _) = self.lower_place(e)?;
                        Ok(self.load_from(addr, &ty, e.loc, Meta::default()))
                    }
                }
            }
            ExprKind::Deref(inner) => {
                let ty = self.ty_of(e);
                let addr = self.lower_expr(inner)?;
                match ty {
                    Type::Array(..) => Ok(addr),
                    _ => Ok(self.load_from(addr, &ty, e.loc, Meta::default())),
                }
            }
            ExprKind::Unary(op, a) => {
                let av = self.lower_expr(a)?;
                let ty = self.int_ty_of(a).promoted();
                match op {
                    UnOp::Neg => {
                        if let Some(v) = av.as_imm() {
                            return Ok(Operand::Imm(ty.wrap(-(v as i128)) as i64));
                        }
                        let meta = Meta { sanitize: ty.signed, ..Meta::default() };
                        Ok(Operand::Reg(self.emit_value_meta(
                            Op::Un { op: UnKind::Neg, a: av, ty },
                            e.loc,
                            meta,
                        )))
                    }
                    UnOp::BitNot => {
                        if let Some(v) = av.as_imm() {
                            return Ok(Operand::Imm(ty.wrap(!(v as i128)) as i64));
                        }
                        Ok(Operand::Reg(self.emit_value(
                            Op::Un { op: UnKind::Not, a: av, ty },
                            e.loc,
                        )))
                    }
                    UnOp::Not => {
                        if let Some(v) = av.as_imm() {
                            return Ok(Operand::Imm(i64::from(v == 0)));
                        }
                        Ok(Operand::Reg(self.emit_value(
                            Op::Un { op: UnKind::LogicalNot, a: av, ty: IntType::INT },
                            e.loc,
                        )))
                    }
                }
            }
            ExprKind::Binary(op, a, b) => self.lower_binary(e, *op, a, b),
            ExprKind::Assign(l, r) => {
                let lty = self.ty_of(l);
                if matches!(lty, Type::Struct(_)) {
                    let (src, _) = self.lower_place(r)?;
                    let (dst, _) = self.lower_place(l)?;
                    let len = self.sizeof(&lty) as u32;
                    self.emit_effect(Op::MemCopy { dst, src, len }, e.loc);
                    return Ok(Operand::Imm(0));
                }
                let rv = self.lower_expr(r)?;
                let (addr, _) = self.lower_place(l)?;
                let size = self.sizeof(&lty).min(8) as u8;
                self.emit_effect(Op::Store { addr, val: rv, size }, l.loc);
                Ok(rv)
            }
            ExprKind::CompoundAssign(op, l, r) => {
                let rv = self.lower_expr(r)?;
                let lty = self.ty_of(l);
                let (addr, _) = self.lower_place(l)?;
                let cur = self.load_from(addr, &lty, l.loc, Meta::default());
                let ity = self
                    .int_ty_of(l)
                    .promoted()
                    .unify(self.int_ty_of(r).promoted());
                let result = if lty.is_ptr() {
                    let scale = self.sizeof(lty.pointee().unwrap_or(&Type::Void)) as i64;
                    let off = if *op == BinOp::Sub {
                        let neg = self.emit_value(
                            Op::Un { op: UnKind::Neg, a: rv, ty: IntType::LONG },
                            e.loc,
                        );
                        Operand::Reg(neg)
                    } else {
                        rv
                    };
                    Operand::Reg(self.emit_value(
                        Op::PtrAdd { base: cur, offset: off, scale },
                        e.loc,
                    ))
                } else {
                    let meta = Meta { sanitize: ity.signed, ..Meta::default() };
                    Operand::Reg(self.emit_value_meta(
                        Op::Bin { op: bin_kind(*op), a: cur, b: rv, ty: ity },
                        e.loc,
                        meta,
                    ))
                };
                let size = self.sizeof(&lty).min(8) as u8;
                self.emit_effect(Op::Store { addr, val: result, size }, l.loc);
                Ok(result)
            }
            ExprKind::PreInc(a) | ExprKind::PreDec(a) => {
                let delta: i64 = if matches!(e.kind, ExprKind::PreInc(_)) { 1 } else { -1 };
                let aty = self.ty_of(a);
                let (addr, _) = self.lower_place(a)?;
                let rmw = Meta { rmw: true, ..Meta::default() };
                let cur = self.load_from(addr, &aty, e.loc, rmw);
                let result = if aty.is_ptr() {
                    let scale = self.sizeof(aty.pointee().unwrap_or(&Type::Void)) as i64;
                    Operand::Reg(self.emit_value_meta(
                        Op::PtrAdd { base: cur, offset: Operand::Imm(delta), scale },
                        e.loc,
                        rmw,
                    ))
                } else {
                    let ity = self.int_ty_of(a).promoted();
                    let meta = Meta { sanitize: ity.signed, rmw: true, ..Meta::default() };
                    Operand::Reg(self.emit_value_meta(
                        Op::Bin { op: BinKind::Add, a: cur, b: Operand::Imm(delta), ty: ity },
                        e.loc,
                        meta,
                    ))
                };
                let size = self.sizeof(&aty).min(8) as u8;
                self.emit(Instr {
                    dst: None,
                    op: Op::Store { addr, val: result, size },
                    loc: e.loc,
                    meta: rmw,
                });
                Ok(result)
            }
            ExprKind::AddrOf(a) => {
                let (addr, _) = self.lower_place(a)?;
                Ok(addr)
            }
            ExprKind::Cast(ty, a) => {
                let av = self.lower_expr(a)?;
                match ty {
                    Type::Int(to) => {
                        if let Some(v) = av.as_imm() {
                            return Ok(Operand::Imm(to.wrap(v as i128) as i64));
                        }
                        let widened = is_boolish(a) && to.width.bits() < 32;
                        let meta = Meta { bool_widened: widened, ..Meta::default() };
                        Ok(Operand::Reg(self.emit_value_meta(
                            Op::Cast { a: av, to: *to },
                            e.loc,
                            meta,
                        )))
                    }
                    _ => Ok(av), // pointer casts are no-ops at machine level
                }
            }
            ExprKind::Call(name, args) => {
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.lower_expr(a)?);
                }
                match name.as_str() {
                    "malloc" => Ok(Operand::Reg(
                        self.emit_value(Op::Malloc { size: vals[0] }, e.loc),
                    )),
                    "free" => {
                        self.emit_effect(Op::Free { addr: vals[0] }, e.loc);
                        Ok(Operand::Imm(0))
                    }
                    "print_value" => {
                        self.emit_effect(Op::Print { val: vals[0] }, e.loc);
                        Ok(Operand::Imm(0))
                    }
                    _ => Ok(Operand::Reg(self.emit_value(
                        Op::Call { callee: name.clone(), args: vals },
                        e.loc,
                    ))),
                }
            }
            ExprKind::Cond(c, t, f) => {
                let result = self.new_slot(&format!("$cond{}", e.id), &Type::Int(IntType::LONG));
                let cv = self.lower_expr(c)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.block().term = Some(Term::Br { cond: cv, then_bb, else_bb });
                self.switch_to(then_bb);
                let tv = self.lower_expr(t)?;
                let addr = self.emit_value(Op::AddrLocal(result), e.loc);
                self.emit_effect(Op::Store { addr: Operand::Reg(addr), val: tv, size: 8 }, e.loc);
                self.block().term = Some(Term::Jmp(join));
                self.switch_to(else_bb);
                let fv = self.lower_expr(f)?;
                let addr = self.emit_value(Op::AddrLocal(result), e.loc);
                self.emit_effect(Op::Store { addr: Operand::Reg(addr), val: fv, size: 8 }, e.loc);
                self.block().term = Some(Term::Jmp(join));
                self.switch_to(join);
                let addr = self.emit_value(Op::AddrLocal(result), e.loc);
                Ok(Operand::Reg(self.emit_value(
                    Op::Load { addr: Operand::Reg(addr), size: 8, signed: true },
                    e.loc,
                )))
            }
        }
    }

    fn lower_binary(
        &mut self,
        e: &Expr,
        op: BinOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<Operand, CompileError> {
        // Short-circuit operators need control flow.
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let result = self.new_slot(&format!("$sc{}", e.id), &Type::int());
            let av = self.lower_expr(a)?;
            let addr = self.emit_value(Op::AddrLocal(result), e.loc);
            let abool = self.emit_value(
                Op::Bin { op: BinKind::Ne, a: av, b: Operand::Imm(0), ty: IntType::LONG },
                a.loc,
            );
            self.emit_effect(
                Op::Store { addr: Operand::Reg(addr), val: Operand::Reg(abool), size: 4 },
                e.loc,
            );
            let eval_b = self.new_block();
            let join = self.new_block();
            let term = if op == BinOp::LogAnd {
                Term::Br { cond: Operand::Reg(abool), then_bb: eval_b, else_bb: join }
            } else {
                Term::Br { cond: Operand::Reg(abool), then_bb: join, else_bb: eval_b }
            };
            self.block().term = Some(term);
            self.switch_to(eval_b);
            let bv = self.lower_expr(b)?;
            let bbool = self.emit_value(
                Op::Bin { op: BinKind::Ne, a: bv, b: Operand::Imm(0), ty: IntType::LONG },
                b.loc,
            );
            let addr2 = self.emit_value(Op::AddrLocal(result), e.loc);
            self.emit_effect(
                Op::Store { addr: Operand::Reg(addr2), val: Operand::Reg(bbool), size: 4 },
                e.loc,
            );
            self.block().term = Some(Term::Jmp(join));
            self.switch_to(join);
            let addr3 = self.emit_value(Op::AddrLocal(result), e.loc);
            return Ok(Operand::Reg(self.emit_value(
                Op::Load { addr: Operand::Reg(addr3), size: 4, signed: true },
                e.loc,
            )));
        }
        let ta = self.ty_of(a).decayed();
        let tb = self.ty_of(b).decayed();
        let av = self.lower_expr(a)?;
        let bv = self.lower_expr(b)?;
        // Pointer arithmetic / comparisons.
        if ta.is_ptr() || tb.is_ptr() {
            match op {
                BinOp::Add | BinOp::Sub if ta.is_ptr() && tb.is_int() => {
                    let scale = self.sizeof(ta.pointee().unwrap_or(&Type::Void)) as i64;
                    let off = if op == BinOp::Sub {
                        if let Some(v) = bv.as_imm() {
                            Operand::Imm(-v)
                        } else {
                            Operand::Reg(self.emit_value(
                                Op::Un { op: UnKind::Neg, a: bv, ty: IntType::LONG },
                                e.loc,
                            ))
                        }
                    } else {
                        bv
                    };
                    return Ok(Operand::Reg(self.emit_value(
                        Op::PtrAdd { base: av, offset: off, scale },
                        e.loc,
                    )));
                }
                BinOp::Add if ta.is_int() && tb.is_ptr() => {
                    let scale = self.sizeof(tb.pointee().unwrap_or(&Type::Void)) as i64;
                    return Ok(Operand::Reg(self.emit_value(
                        Op::PtrAdd { base: bv, offset: av, scale },
                        e.loc,
                    )));
                }
                BinOp::Sub if ta.is_ptr() && tb.is_ptr() => {
                    let diff = self.emit_value(
                        Op::Bin { op: BinKind::Sub, a: av, b: bv, ty: IntType::LONG },
                        e.loc,
                    );
                    let scale = self.sizeof(ta.pointee().unwrap_or(&Type::Void)).max(1) as i64;
                    return Ok(Operand::Reg(self.emit_value(
                        Op::Bin {
                            op: BinKind::Div,
                            a: Operand::Reg(diff),
                            b: Operand::Imm(scale),
                            ty: IntType::LONG,
                        },
                        e.loc,
                    )));
                }
                _ if op.is_comparison() => {
                    return Ok(Operand::Reg(self.emit_value(
                        Op::Bin { op: bin_kind(op), a: av, b: bv, ty: IntType::ULONG },
                        e.loc,
                    )));
                }
                _ => {
                    return Err(CompileError {
                        message: format!("invalid pointer operation {op:?}"),
                    })
                }
            }
        }
        let ia = self.int_ty_of(a);
        let ib = self.int_ty_of(b);
        let ty = if op.is_shift() { ia.promoted() } else { ia.unify(ib) };
        // Frontend constant folding (even at -O0).
        if let (Some(x), Some(y)) = (av.as_imm(), bv.as_imm()) {
            if let Some(v) = crate::passes::fold_bin(bin_kind(op), x, y, ty) {
                return Ok(Operand::Imm(v));
            }
        }
        let meta = Meta {
            sanitize: ty.signed && (op.is_arith() || op.is_shift()),
            char_shift_amount: op.is_shift() && self.int_ty_of(b).width.bits() == 8,
            ..Meta::default()
        };
        Ok(Operand::Reg(self.emit_value_meta(
            Op::Bin { op: bin_kind(op), a: av, b: bv, ty },
            e.loc,
            meta,
        )))
    }

    fn load_from(&mut self, addr: Operand, ty: &Type, loc: Loc, meta: Meta) -> Operand {
        let (size, signed) = match ty {
            Type::Int(it) => (it.width.bytes() as u8, it.signed),
            Type::Ptr(_) => (8, false),
            _ => (8, false),
        };
        Operand::Reg(self.emit_value_meta(Op::Load { addr, size, signed }, loc, meta))
    }

    /// Lowers an lvalue to its address operand and type.
    fn lower_place(&mut self, e: &Expr) -> Result<(Operand, Type), CompileError> {
        match &e.kind {
            ExprKind::Var(name) => {
                let ty = self.ty_of(e);
                match self.lookup(name) {
                    Some(Place::Slot(s)) => {
                        Ok((Operand::Reg(self.emit_value(Op::AddrLocal(s), e.loc)), ty))
                    }
                    Some(Place::Global(g)) => {
                        Ok((Operand::Reg(self.emit_value(Op::AddrGlobal(g), e.loc)), ty))
                    }
                    None => Err(CompileError { message: format!("unknown variable {name}") }),
                }
            }
            ExprKind::Deref(inner) => {
                let addr = self.lower_expr(inner)?;
                Ok((addr, self.ty_of(e)))
            }
            ExprKind::Index(base, idx) => {
                let base_ty = self.ty_of(base);
                let base_addr = if matches!(base_ty, Type::Array(..)) {
                    self.lower_place(base)?.0
                } else {
                    self.lower_expr(base)?
                };
                let iv = self.lower_expr(idx)?;
                let elem_ty = self.ty_of(e);
                let scale = self.sizeof(&elem_ty).max(1) as i64;
                let addr = self.emit_value(
                    Op::PtrAdd { base: base_addr, offset: iv, scale },
                    e.loc,
                );
                Ok((Operand::Reg(addr), elem_ty))
            }
            ExprKind::Member(base, field) => {
                let (baddr, bty) = self.lower_place(base)?;
                let (off, fty) = self.field(&bty, field)?;
                let addr = self.emit_value(
                    Op::PtrAdd { base: baddr, offset: Operand::Imm(off), scale: 1 },
                    e.loc,
                );
                Ok((Operand::Reg(addr), fty))
            }
            ExprKind::Arrow(base, field) => {
                let baddr = self.lower_expr(base)?;
                let bty = self.ty_of(base).decayed();
                let pointee = bty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| CompileError { message: "-> on non-pointer".into() })?;
                let (off, fty) = self.field(&pointee, field)?;
                let addr = self.emit_value(
                    Op::PtrAdd { base: baddr, offset: Operand::Imm(off), scale: 1 },
                    e.loc,
                );
                Ok((Operand::Reg(addr), fty))
            }
            _ => Err(CompileError { message: format!("not an lvalue at {}", e.loc) }),
        }
    }

    fn field(&self, ty: &Type, name: &str) -> Result<(i64, Type), CompileError> {
        match ty {
            Type::Struct(idx) => self.program.structs[*idx]
                .field_offset(name, &self.program.structs)
                .map(|(o, t)| (o as i64, t.clone()))
                .ok_or_else(|| CompileError { message: format!("no field {name}") }),
            _ => Err(CompileError { message: "member of non-struct".into() }),
        }
    }

    // ---- statements --------------------------------------------------------

    fn lower_block(&mut self, b: &ast::Block) -> Result<(), CompileError> {
        self.scopes.push(Vec::new());
        let mut my_slots = Vec::new();
        for s in &b.stmts {
            self.lower_stmt(s, &mut my_slots)?;
            if self.block().term.is_some() {
                break; // unreachable code after return/break
            }
        }
        // Scope exit: end lifetimes in reverse order.
        if self.block().term.is_none() {
            for slot in my_slots.iter().rev() {
                self.emit_effect(Op::LifetimeEnd(*slot), Loc::UNKNOWN);
            }
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt, my_slots: &mut Vec<usize>) -> Result<(), CompileError> {
        match &s.kind {
            StmtKind::Decl(d) => {
                let slot = self.new_slot(&d.name, &d.ty);
                my_slots.push(slot);
                self.emit_effect(Op::LifetimeStart(slot), s.loc);
                if let Some(init) = &d.init {
                    self.lower_local_init(slot, &d.ty, init, s.loc)?;
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.lower_expr(e)?;
                Ok(())
            }
            StmtKind::If(c, t, f) => {
                let cv = self.lower_expr(c)?;
                let then_bb = self.new_block();
                let join = self.new_block();
                let else_bb = if f.is_some() { self.new_block() } else { join };
                self.block().term = Some(Term::Br { cond: cv, then_bb, else_bb });
                self.switch_to(then_bb);
                self.lower_block(t)?;
                if self.block().term.is_none() {
                    self.block().term = Some(Term::Jmp(join));
                }
                if let Some(f) = f {
                    self.switch_to(else_bb);
                    self.lower_block(f)?;
                    if self.block().term.is_none() {
                        self.block().term = Some(Term::Jmp(join));
                    }
                }
                self.switch_to(join);
                Ok(())
            }
            StmtKind::While(c, body) => {
                let cond_bb = self.new_block();
                let body_bb = self.new_block();
                let exit_bb = self.new_block();
                self.block().term = Some(Term::Jmp(cond_bb));
                self.switch_to(cond_bb);
                let cv = self.lower_expr(c)?;
                self.block().term =
                    Some(Term::Br { cond: cv, then_bb: body_bb, else_bb: exit_bb });
                self.switch_to(body_bb);
                self.loops.push((cond_bb, exit_bb));
                self.lower_block(body)?;
                self.loops.pop();
                if self.block().term.is_none() {
                    self.block().term = Some(Term::Jmp(cond_bb));
                }
                self.switch_to(exit_bb);
                Ok(())
            }
            StmtKind::For { init, cond, step, body } => {
                self.scopes.push(Vec::new());
                let mut for_slots = Vec::new();
                if let Some(i) = init {
                    self.lower_stmt(i, &mut for_slots)?;
                }
                let cond_bb = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit_bb = self.new_block();
                self.block().term = Some(Term::Jmp(cond_bb));
                self.switch_to(cond_bb);
                match cond {
                    Some(c) => {
                        let cv = self.lower_expr(c)?;
                        self.block().term =
                            Some(Term::Br { cond: cv, then_bb: body_bb, else_bb: exit_bb });
                    }
                    None => {
                        self.block().term = Some(Term::Jmp(body_bb));
                    }
                }
                self.switch_to(body_bb);
                self.loops.push((step_bb, exit_bb));
                self.lower_block(body)?;
                self.loops.pop();
                if self.block().term.is_none() {
                    self.block().term = Some(Term::Jmp(step_bb));
                }
                self.switch_to(step_bb);
                if let Some(st) = step {
                    self.lower_expr(st)?;
                }
                self.block().term = Some(Term::Jmp(cond_bb));
                self.switch_to(exit_bb);
                for slot in for_slots.iter().rev() {
                    self.emit_effect(Op::LifetimeEnd(*slot), Loc::UNKNOWN);
                }
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.block().term = Some(Term::Ret(v));
                Ok(())
            }
            StmtKind::Break => {
                let (_, exit) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError { message: "break outside loop".into() })?;
                self.block().term = Some(Term::Jmp(exit));
                Ok(())
            }
            StmtKind::Continue => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError { message: "continue outside loop".into() })?;
                self.block().term = Some(Term::Jmp(cont));
                Ok(())
            }
            StmtKind::Block(b) => self.lower_block(b),
        }
    }

    fn lower_local_init(
        &mut self,
        slot: usize,
        ty: &Type,
        init: &Init,
        loc: Loc,
    ) -> Result<(), CompileError> {
        match (init, ty) {
            (Init::Expr(e), _) => {
                let v = self.lower_expr(e)?;
                let addr = self.emit_value(Op::AddrLocal(slot), loc);
                let size = self.sizeof(ty).min(8) as u8;
                self.emit_effect(Op::Store { addr: Operand::Reg(addr), val: v, size }, loc);
                Ok(())
            }
            (Init::List(items), Type::Array(elem, n)) => {
                let es = self.sizeof(elem) as i64;
                let size = self.sizeof(elem).min(8) as u8;
                for i in 0..*n {
                    let v = match items.get(i) {
                        Some(Init::Expr(e)) => self.lower_expr(e)?,
                        Some(nested) => {
                            // Nested aggregate: recurse via offset stores.
                            self.lower_nested_init(slot, elem, nested, (i as i64) * es, loc)?;
                            continue;
                        }
                        None => Operand::Imm(0),
                    };
                    let base = self.emit_value(Op::AddrLocal(slot), loc);
                    let addr = self.emit_value(
                        Op::PtrAdd {
                            base: Operand::Reg(base),
                            offset: Operand::Imm(i as i64),
                            scale: es,
                        },
                        loc,
                    );
                    self.emit_effect(
                        Op::Store { addr: Operand::Reg(addr), val: v, size },
                        loc,
                    );
                }
                Ok(())
            }
            (Init::List(items), Type::Struct(sidx)) => {
                let fields: Vec<(i64, Type)> = {
                    let mut off = 0i64;
                    self.program.structs[*sidx]
                        .fields
                        .iter()
                        .map(|(_, t)| {
                            let o = off;
                            off += t.size_of(&self.program.structs) as i64;
                            (o, t.clone())
                        })
                        .collect()
                };
                for (i, (off, fty)) in fields.iter().enumerate() {
                    if let Some(it) = items.get(i) {
                        self.lower_nested_init(slot, fty, it, *off, loc)?;
                    }
                }
                Ok(())
            }
            (Init::List(items), _) if items.len() == 1 => {
                self.lower_local_init(slot, ty, &items[0], loc)
            }
            _ => Err(CompileError { message: "bad initializer shape".into() }),
        }
    }

    fn lower_nested_init(
        &mut self,
        slot: usize,
        ty: &Type,
        init: &Init,
        byte_off: i64,
        loc: Loc,
    ) -> Result<(), CompileError> {
        match (init, ty) {
            (Init::Expr(e), _) => {
                let v = self.lower_expr(e)?;
                let base = self.emit_value(Op::AddrLocal(slot), loc);
                let addr = self.emit_value(
                    Op::PtrAdd {
                        base: Operand::Reg(base),
                        offset: Operand::Imm(byte_off),
                        scale: 1,
                    },
                    loc,
                );
                let size = self.sizeof(ty).min(8) as u8;
                self.emit_effect(Op::Store { addr: Operand::Reg(addr), val: v, size }, loc);
                Ok(())
            }
            (Init::List(items), Type::Array(elem, n)) => {
                let es = self.sizeof(elem) as i64;
                for (i, item) in items.iter().take(*n).enumerate() {
                    self.lower_nested_init(slot, elem, item, byte_off + (i as i64) * es, loc)?;
                }
                Ok(())
            }
            _ => Err(CompileError { message: "bad nested initializer".into() }),
        }
    }
}

enum Place {
    Slot(usize),
    Global(usize),
}

fn bin_kind(op: BinOp) -> BinKind {
    match op {
        BinOp::Add => BinKind::Add,
        BinOp::Sub => BinKind::Sub,
        BinOp::Mul => BinKind::Mul,
        BinOp::Div => BinKind::Div,
        BinOp::Rem => BinKind::Rem,
        BinOp::Shl => BinKind::Shl,
        BinOp::Shr => BinKind::Shr,
        BinOp::BitAnd => BinKind::And,
        BinOp::BitOr => BinKind::Or,
        BinOp::BitXor => BinKind::Xor,
        BinOp::Lt => BinKind::Lt,
        BinOp::Le => BinKind::Le,
        BinOp::Gt => BinKind::Gt,
        BinOp::Ge => BinKind::Ge,
        BinOp::Eq => BinKind::Eq,
        BinOp::Ne => BinKind::Ne,
        BinOp::LogAnd | BinOp::LogOr => unreachable!("short-circuit lowered separately"),
    }
}

/// True for expressions that produce 0/1 (comparison chains combined with
/// bitwise or/and) — the raw material of the Fig. 12b folding defect.
fn is_boolish(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Binary(op, a, b) => {
            op.is_comparison()
                || (matches!(op, BinOp::BitOr | BinOp::BitAnd | BinOp::LogAnd | BinOp::LogOr)
                    && is_boolish(a)
                    && is_boolish(b))
        }
        ExprKind::Unary(UnOp::Not, _) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;

    fn lower_src(src: &str) -> Module {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn lowers_simple_main() {
        let m = lower_src("int main(void) { int x = 2; return x + 3; }");
        let f = m.func("main").unwrap();
        assert!(!f.blocks.is_empty());
        assert!(f.slots.iter().any(|s| s.name == "x"));
    }

    #[test]
    fn frontend_folds_constants() {
        let m = lower_src("int main(void) { return 2 + 3 * 4; }");
        let f = m.func("main").unwrap();
        // Everything folded: no Bin instructions remain.
        let bins = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.op, Op::Bin { .. }))
            .count();
        assert_eq!(bins, 0);
        assert_eq!(f.blocks[0].term, Some(Term::Ret(Some(Operand::Imm(14)))));
    }

    #[test]
    fn global_initializers_with_relocs() {
        let m = lower_src(
            "int g[3] = {7, 8, 9};
             int *p = g;
             int *q = &g[2];
             int main(void) { return 0; }",
        );
        assert_eq!(m.globals[0].init[0], 7);
        assert_eq!(m.globals[1].relocs, vec![(0, 0, 0)]);
        assert_eq!(m.globals[2].relocs, vec![(0, 0, 8)]);
    }

    #[test]
    fn loops_have_four_block_shape() {
        let m = lower_src(
            "int main(void) { int s = 0; for (int i = 0; i < 4; i = i + 1) { s += i; } return s; }",
        );
        let f = m.func("main").unwrap();
        assert!(f.blocks.len() >= 5, "entry+cond+body+step+exit: {}", f.blocks.len());
    }

    #[test]
    fn rmw_metadata_set() {
        let m = lower_src("int g; int main(void) { ++g; return g; }");
        let f = m.func("main").unwrap();
        let rmw_count = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| i.meta.rmw)
            .count();
        assert!(rmw_count >= 3, "load+add+store all marked rmw: {rmw_count}");
    }

    #[test]
    fn bool_widened_cast_flagged() {
        let m = lower_src(
            "int a; int b; int main(void) { short s = (short)((a == 1) | (b > 2)); return s; }",
        );
        let f = m.func("main").unwrap();
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| i.meta.bool_widened && matches!(i.op, Op::Cast { .. })));
    }

    #[test]
    fn sanitize_flag_on_signed_arith_only() {
        let m = lower_src(
            "int a; unsigned int u; int main(void) { int x = a + a; unsigned int y = u + u; return x + (int)y; }",
        );
        let f = m.func("main").unwrap();
        let flags: Vec<bool> = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match i.op {
                Op::Bin { op: BinKind::Add, ty, .. } => Some((i.meta.sanitize, ty.signed)),
                _ => None,
            })
            .map(|(s, signed)| s == signed)
            .collect();
        assert!(!flags.is_empty());
        assert!(flags.iter().all(|&ok| ok), "sanitize flag tracks signedness");
    }

    #[test]
    fn short_circuit_creates_branches() {
        let m = lower_src("int a; int b; int main(void) { return (a == 1) && (b == 2); }");
        let f = m.func("main").unwrap();
        assert!(f.blocks.len() >= 3);
    }

    #[test]
    fn lifetime_markers_emitted_for_inner_scopes() {
        let m = lower_src("int main(void) { { int t = 1; t = t + 1; } return 0; }");
        let f = m.func("main").unwrap();
        let starts = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.op, Op::LifetimeStart(_)))
            .count();
        let ends = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.op, Op::LifetimeEnd(_)))
            .count();
        assert!(starts >= 1);
        assert!(ends >= 1);
    }

    #[test]
    fn rejects_nonconst_global_init() {
        let p = parse("int a; int b = a; int main(void) { return b; }").unwrap();
        assert!(lower(&p).is_err());
    }
}
