//! Sanitizer instrumentation passes (ASan, UBSan, MSan) with the injected
//! defect corpus wired into every check-site decision.
//!
//! Instrumentation happens mid-pipeline (paper Fig. 2): the early optimizer
//! has already run, so UB deleted by optimization simply is not here to be
//! instrumented — that is the optimization-caused-discrepancy half of the
//! paper's Challenge 2. The defect half: at every would-be check site the
//! pass consults the [`DefectRegistry`]; a matching active defect suppresses
//! or corrupts the check, recording ground-truth attribution in
//! [`SanMeta::applied_defects`].

use crate::cov;
use crate::defects::{Defect, DefectRegistry, Trigger};
use crate::ir::*;
use crate::passes::blocks_in_loops;
use crate::target::{OptLevel, Vendor};
use std::collections::{HashMap, HashSet};
use ubfuzz_minic::{Loc, UbKind};

/// Which UB kinds each sanitizer detects (paper Table 2).
pub fn supports(s: Sanitizer, kind: UbKind) -> bool {
    use UbKind::*;
    match s {
        Sanitizer::Asan => {
            matches!(kind, BufOverflowArray | BufOverflowPtr | UseAfterFree | UseAfterScope)
        }
        Sanitizer::Ubsan => {
            matches!(kind, BufOverflowArray | NullDeref | IntOverflow | ShiftOverflow | DivByZero)
        }
        Sanitizer::Msan => matches!(kind, UninitUse),
    }
}

/// The sanitizers that detect `kind` (Table 2, reading column-wise) —
/// allocation-free: a fixed-capacity list in `Sanitizer::ALL` order.
pub fn sanitizers_for(kind: UbKind) -> SanList {
    let mut sans = [Sanitizer::Asan; 3];
    let mut len = 0;
    for s in Sanitizer::ALL {
        if supports(s, kind) {
            sans[len] = s;
            len += 1;
        }
    }
    SanList { sans, len }
}

/// A fixed-capacity set of sanitizers (at most [`Sanitizer::ALL`], in that
/// order). Returned by [`sanitizers_for`] so the planning hot path never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanList {
    sans: [Sanitizer; 3],
    len: usize,
}

impl SanList {
    /// Number of sanitizers in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no sanitizer detects the kind.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sanitizers as a slice.
    pub fn as_slice(&self) -> &[Sanitizer] {
        &self.sans[..self.len]
    }

    /// Iterates the sanitizers by value.
    pub fn iter(&self) -> impl Iterator<Item = Sanitizer> + '_ {
        self.as_slice().iter().copied()
    }
}

impl IntoIterator for SanList {
    type Item = Sanitizer;
    type IntoIter = std::iter::Take<std::array::IntoIter<Sanitizer, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.sans.into_iter().take(self.len)
    }
}

impl<'a> IntoIterator for &'a SanList {
    type Item = Sanitizer;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Sanitizer>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

/// Context for one instrumentation run.
pub struct SanCtx<'a> {
    /// Vendor being modelled.
    pub vendor: Vendor,
    /// Compiler version.
    pub version: u32,
    /// Optimization level of this compilation.
    pub opt: OptLevel,
    /// Defect registry in force.
    pub registry: &'a DefectRegistry,
    /// Partial-sanitization policy: which would-be check sites actually get
    /// their check. [`SanPolicy::Full`] leaves instrumentation untouched.
    pub policy: crate::partition::SanPolicy,
}

impl<'a> SanCtx<'a> {
    fn active(&self, sanitizer: Sanitizer) -> Vec<&'static Defect> {
        self.registry.active(self.vendor, self.version, self.opt, sanitizer)
    }
}

/// Reverse def map over a function (single-assignment registers).
fn defs_of(f: &Func) -> HashMap<RegId, Op> {
    let mut m = HashMap::new();
    for b in &f.blocks {
        for i in &b.instrs {
            if let Some(d) = i.dst {
                m.insert(d, i.op.clone());
            }
        }
    }
    m
}

fn meta_of(f: &Func) -> HashMap<RegId, Meta> {
    let mut m = HashMap::new();
    for b in &f.blocks {
        for i in &b.instrs {
            if let Some(d) = i.dst {
                m.insert(d, i.meta);
            }
        }
    }
    m
}

/// Walks an address operand back to its root, peeling `PtrAdd`s; returns the
/// root op and the total constant byte offset (None when non-constant).
fn addr_root(defs: &HashMap<RegId, Op>, addr: Operand) -> (Option<&Op>, Option<i64>) {
    let mut cur = addr;
    let mut const_off: Option<i64> = Some(0);
    loop {
        match cur {
            Operand::Imm(_) => return (None, const_off),
            Operand::Reg(r) => match defs.get(&r) {
                Some(Op::PtrAdd { base, offset, scale }) => {
                    const_off = match (const_off, offset.as_imm()) {
                        (Some(acc), Some(o)) => Some(acc + o * scale),
                        _ => None,
                    };
                    cur = *base;
                }
                other => return (other, const_off),
            },
        }
    }
}

/// True if the def chain of `o` (through Bin/Cast/Un) contains an
/// instruction whose metadata satisfies `pred`, or a matching op.
fn chain_any(
    defs: &HashMap<RegId, Op>,
    metas: &HashMap<RegId, Meta>,
    o: Operand,
    depth: usize,
    pred: &dyn Fn(&Op, Meta) -> bool,
) -> bool {
    if depth > 8 {
        return false;
    }
    let Operand::Reg(r) = o else { return false };
    let (Some(op), meta) = (defs.get(&r), metas.get(&r).copied().unwrap_or_default()) else {
        return false;
    };
    if pred(op, meta) {
        return true;
    }
    match op {
        Op::Bin { a, b, .. } => {
            chain_any(defs, metas, *a, depth + 1, pred) || chain_any(defs, metas, *b, depth + 1, pred)
        }
        Op::Un { a, .. } | Op::Cast { a, .. } => chain_any(defs, metas, *a, depth + 1, pred),
        _ => false,
    }
}

/// Slots that ever hold a `malloc` result.
fn malloc_slots(f: &Func, defs: &HashMap<RegId, Op>) -> HashSet<usize> {
    let mut out = HashSet::new();
    for b in &f.blocks {
        for i in &b.instrs {
            if let Op::Store { addr, val, .. } = &i.op {
                let is_malloc = matches!(
                    val.as_reg().and_then(|r| defs.get(&r)),
                    Some(Op::Malloc { .. }) | Some(Op::Cast { .. })
                        if val.as_reg().is_some_and(|r| chain_is_malloc(defs, r))
                );
                if is_malloc {
                    if let (Some(Op::AddrLocal(s)), _) = addr_root(defs, *addr) {
                        out.insert(*s);
                    }
                }
            }
        }
    }
    out
}

fn chain_is_malloc(defs: &HashMap<RegId, Op>, r: RegId) -> bool {
    match defs.get(&r) {
        Some(Op::Malloc { .. }) => true,
        Some(Op::Cast { a: Operand::Reg(r2), .. }) => chain_is_malloc(defs, *r2),
        _ => false,
    }
}

/// Slots whose address escapes by being stored as a *value*.
fn escaping_slots(f: &Func, defs: &HashMap<RegId, Op>) -> HashSet<usize> {
    let mut out = HashSet::new();
    for b in &f.blocks {
        for i in &b.instrs {
            if let Op::Store { val: Operand::Reg(r), .. } = &i.op {
                if let Some(Op::AddrLocal(s)) = defs.get(r) {
                    out.insert(*s);
                }
            }
        }
    }
    out
}

/// Slots first initialized from a doubly-indirect load (`int i = *s;` where
/// `s` is itself loaded) — the Fig. 8 shape that GCC `-O3` may legitimately
/// transform.
fn fig8_slots(f: &Func, defs: &HashMap<RegId, Op>) -> HashSet<usize> {
    let mut out = HashSet::new();
    for b in &f.blocks {
        for i in &b.instrs {
            if let Op::Store { addr, val: Operand::Reg(v), .. } = &i.op {
                if let (Some(Op::AddrLocal(s)), Some(0)) = addr_root(defs, *addr) {
                    if let Some(Op::Load { addr: Operand::Reg(inner), .. }) = defs.get(v) {
                        if matches!(defs.get(inner), Some(Op::Load { .. })) {
                            out.insert(*s);
                        }
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// ASan
// ---------------------------------------------------------------------------

/// Runs the AddressSanitizer pass.
pub fn run_asan(m: &mut Module, ctx: &SanCtx<'_>) {
    cov::hit(ctx.vendor, "asan.rs", "run");
    m.san.sanitizer = Some(Sanitizer::Asan);
    let active = ctx.active(Sanitizer::Asan);
    // Global red zones: odd-length arrays may get a defective gap.
    cov::hit(ctx.vendor, "asan.rs", "global_redzones");
    for (gid, g) in m.globals.iter().enumerate() {
        if g.elem_count > 1 && g.elem_count % 2 == 1 {
            let gap = match ctx.vendor {
                Vendor::Gcc => active
                    .iter()
                    .find(|d| d.trigger == Trigger::OddGlobalArray)
                    .map(|d| (d.id, g.elem_size)),
                Vendor::Llvm => active
                    .iter()
                    .find(|d| d.trigger == Trigger::OddGlobalArrayLlvm)
                    .map(|d| (d.id, 8)),
            };
            if let Some((id, bytes)) = gap {
                cov::hit(ctx.vendor, "asan.rs", "odd_redzone_gap");
                m.san.global_redzone_gaps.push((gid, bytes));
                m.san.applied_defects.push((id, Loc::UNKNOWN));
            }
        }
    }
    let mut applied: Vec<(&'static str, Loc)> = Vec::new();
    let mut legit: Vec<Loc> = Vec::new();
    let mut skipped: Vec<Loc> = Vec::new();
    for f in &mut m.funcs {
        cov::hit(ctx.vendor, "asan.rs", "analyze_func");
        let defs = defs_of(f);
        let in_loop = blocks_in_loops(f);
        let mallocs = malloc_slots(f, &defs);
        let escapes = escaping_slots(f, &defs);
        let fig8 = fig8_slots(f, &defs);
        let is_main = f.name == "main";
        let nparams = f.params.len();
        for (bi, b) in f.blocks.iter_mut().enumerate() {
            let mut out: Vec<Instr> = Vec::with_capacity(b.instrs.len() * 2);
            let mut checked_regs: HashSet<RegId> = HashSet::new();
            for ins in b.instrs.drain(..) {
                match &ins.op {
                    Op::Load { addr, size, .. } | Op::Store { addr, size, .. } => {
                        if !ctx.policy.keeps(&f.name, ins.loc) {
                            cov::hit(ctx.vendor, "asan.rs", "policy_skip");
                            skipped.push(ins.loc);
                            out.push(ins);
                            continue;
                        }
                        let write = matches!(ins.op, Op::Store { .. });
                        cov::hit(
                            ctx.vendor,
                            "asan.rs",
                            if write { "instrument_store" } else { "instrument_load" },
                        );
                        let (root, _coff) = addr_root(&defs, *addr);
                        let defect = active.iter().find(|d| {
                            access_trigger_matches(
                                d,
                                &ins,
                                root,
                                *addr,
                                &defs,
                                &mallocs,
                                is_main,
                                nparams,
                                &mut checked_regs,
                                write,
                                *size,
                            )
                        });
                        if let Some(d) = defect {
                            cov::hit(ctx.vendor, "asan.rs", "defect_suppressed");
                            if d.trigger == Trigger::RmwWrongLine {
                                // Wrong-report defect: check emitted at the
                                // wrong line.
                                let mut loc = ins.loc;
                                loc.line = loc.line.saturating_sub(1);
                                out.push(Instr {
                                    dst: None,
                                    op: Op::AsanCheck { addr: *addr, size: *size, write },
                                    loc,
                                    meta: ins.meta,
                                });
                            }
                            applied.push((d.id, ins.loc));
                        } else {
                            cov::hit(ctx.vendor, "asan.rs", "check_emitted");
                            checked_regs.extend(addr.as_reg());
                            out.push(Instr {
                                dst: None,
                                op: Op::AsanCheck { addr: *addr, size: *size, write },
                                loc: ins.loc,
                                meta: ins.meta,
                            });
                        }
                        out.push(ins);
                    }
                    Op::MemCopy { dst, src, len } => {
                        if !ctx.policy.keeps(&f.name, ins.loc) {
                            cov::hit(ctx.vendor, "asan.rs", "policy_skip");
                            skipped.push(ins.loc);
                            out.push(ins);
                            continue;
                        }
                        cov::hit(ctx.vendor, "asan.rs", "instrument_memcopy");
                        let tail = active.iter().find(|d| d.trigger == Trigger::StructCopyTail);
                        let checked = if let Some(d) = tail {
                            cov::hit(ctx.vendor, "asan.rs", "memcopy_tail_truncated");
                            applied.push((d.id, ins.loc));
                            (*len).min(8) as u8
                        } else {
                            (*len).min(255) as u8
                        };
                        out.push(Instr {
                            dst: None,
                            op: Op::AsanCheck { addr: *src, size: checked, write: false },
                            loc: ins.loc,
                            meta: ins.meta,
                        });
                        out.push(Instr {
                            dst: None,
                            op: Op::AsanCheck { addr: *dst, size: checked, write: true },
                            loc: ins.loc,
                            meta: ins.meta,
                        });
                        out.push(ins);
                    }
                    Op::LifetimeStart(s) => {
                        cov::hit(ctx.vendor, "asan.rs", "unpoison_scope");
                        let s = *s;
                        out.push(ins);
                        out.push(Instr::effect(Op::AsanUnpoisonScope(s), Loc::UNKNOWN));
                    }
                    Op::LifetimeEnd(s) => {
                        let s = *s;
                        let loc = ins.loc;
                        out.push(ins);
                        let escaping = escapes.contains(&s);
                        let looped = in_loop[bi];
                        let scope_defect = active.iter().find(|d| match d.trigger {
                            Trigger::ScopePoisonInLoop => {
                                looped && escaping && !fig8.contains(&s)
                            }
                            Trigger::ScopePoisonInLoopLlvm => looped && escaping,
                            _ => false,
                        });
                        let legit_transform = ctx.vendor == Vendor::Gcc
                            && ctx.opt == OptLevel::O3
                            && escaping
                            && fig8.contains(&s);
                        if let Some(d) = scope_defect {
                            cov::hit(ctx.vendor, "asan.rs", "scope_defect");
                            applied.push((d.id, loc));
                        } else if legit_transform {
                            // GCC -O3 extends the variable's lifetime out of
                            // the loop: the use-after-scope legitimately
                            // disappears while the crash site stays (the
                            // Fig. 8 invalid-report shape).
                            cov::hit(ctx.vendor, "asan.rs", "legit_scope_extension");
                            legit.push(loc);
                        } else {
                            cov::hit(ctx.vendor, "asan.rs", "scope_kept");
                            cov::hit(ctx.vendor, "asan.rs", "poison_scope");
                            out.push(Instr::effect(Op::AsanPoisonScope(s), loc));
                        }
                    }
                    _ => out.push(ins),
                }
            }
            b.instrs = out;
        }
    }
    m.san.applied_defects.extend(applied);
    m.san.legit_transforms.extend(legit);
    m.san.skipped_sites.extend(skipped);
}

#[allow(clippy::too_many_arguments)]
fn access_trigger_matches(
    d: &Defect,
    ins: &Instr,
    root: Option<&Op>,
    addr: Operand,
    defs: &HashMap<RegId, Op>,
    mallocs: &HashSet<usize>,
    is_main: bool,
    nparams: usize,
    checked_regs: &mut HashSet<RegId>,
    write: bool,
    size: u8,
) -> bool {
    match d.trigger {
        Trigger::AddrFromGlobalPtrLoad => matches!(
            root,
            Some(Op::Load { addr: Operand::Reg(r), size: 8, .. })
                if matches!(defs.get(r), Some(Op::AddrGlobal(_)))
        ),
        Trigger::AddrFromMallocSlot => {
            // The alias-confusion shape needs at least two heap-holding
            // locals in the function (simple single-buffer programs like the
            // Juliet templates are handled correctly).
            mallocs.len() >= 2
                && matches!(
                    root,
                    Some(Op::Load { addr: Operand::Reg(r), .. })
                        if matches!(defs.get(r), Some(Op::AddrLocal(s)) if mallocs.contains(s))
                )
        }
        Trigger::MemberOffsetFromLoadedPtr => {
            // p->f: PtrAdd { base: Load(..), Imm > 0, scale 1 }.
            match addr {
                Operand::Reg(r) => matches!(
                    defs.get(&r),
                    Some(Op::PtrAdd { base: Operand::Reg(b), offset: Operand::Imm(o), scale: 1 })
                        if *o > 0 && matches!(defs.get(b), Some(Op::Load { .. }))
                ),
                _ => false,
            }
        }
        Trigger::ConstOffsetGlobal => match addr {
            Operand::Reg(r) => matches!(
                defs.get(&r),
                Some(Op::PtrAdd { base: Operand::Reg(b), offset: Operand::Imm(_), .. })
                    if matches!(defs.get(b), Some(Op::AddrGlobal(_)))
            ),
            _ => false,
        },
        Trigger::ParamPtrConstOffset => {
            !is_main
                && match addr {
                    Operand::Reg(r) => matches!(
                        defs.get(&r),
                        Some(Op::PtrAdd { base: Operand::Reg(b), offset: Operand::Imm(_), .. })
                            if matches!(
                                defs.get(b),
                                Some(Op::Load { addr: Operand::Reg(ar), .. })
                                    if matches!(defs.get(ar), Some(Op::AddrLocal(s)) if *s < nparams)
                            )
                    ),
                    _ => false,
                }
        }
        Trigger::DuplicateAddrCheck => {
            addr.as_reg().is_some_and(|r| checked_regs.contains(&r))
        }
        Trigger::RmwAccess => write && ins.meta.rmw,
        Trigger::ByteAccess => size == 1 && !matches!(root, Some(Op::AddrLocal(_))),
        Trigger::RmwWrongLine => write && ins.meta.rmw,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// UBSan
// ---------------------------------------------------------------------------

/// Runs the UndefinedBehaviorSanitizer pass.
pub fn run_ubsan(m: &mut Module, ctx: &SanCtx<'_>) {
    cov::hit(ctx.vendor, "ubsan.rs", "run");
    m.san.sanitizer = Some(Sanitizer::Ubsan);
    let active = ctx.active(Sanitizer::Ubsan);
    let globals: Vec<GlobalDef> = m.globals.clone();
    let mut applied: Vec<(&'static str, Loc)> = Vec::new();
    let mut skipped: Vec<Loc> = Vec::new();
    for f in &mut m.funcs {
        let defs = defs_of(f);
        let metas = meta_of(f);
        for b in &mut f.blocks {
            let mut out: Vec<Instr> = Vec::with_capacity(b.instrs.len() * 2);
            for ins in b.instrs.drain(..) {
                match &ins.op {
                    // Signed arithmetic overflow.
                    Op::Bin { op, a, b: rb, ty }
                        if op.is_arith()
                            && !matches!(op, BinKind::Div | BinKind::Rem)
                            && ins.meta.sanitize
                            && ty.signed =>
                    {
                        if !ctx.policy.keeps(&f.name, ins.loc) {
                            cov::hit(ctx.vendor, "ubsan.rs", "policy_skip");
                            skipped.push(ins.loc);
                            out.push(ins);
                            continue;
                        }
                        cov::hit(ctx.vendor, "ubsan.rs", "arith_check");
                        let defect = active.iter().find(|d| match d.trigger {
                            // ArithFeedsGlobalStore is handled by the
                            // `ubsan_global_store_fixup` post-pass.
                            Trigger::SubWithCastOperand => {
                                *op == BinKind::Sub
                                    && (chain_has_cast(&defs, &metas, *a)
                                        || chain_has_cast(&defs, &metas, *rb))
                            }
                            Trigger::MulWithNarrowOperand => {
                                *op == BinKind::Mul
                                    && (chain_is_narrow(&defs, &metas, *a)
                                        || chain_is_narrow(&defs, &metas, *rb))
                            }
                            Trigger::InlinedArith => ins.meta.inlined,
                            _ => false,
                        });
                        if let Some(d) = defect {
                            cov::hit(ctx.vendor, "ubsan.rs", "defect_suppressed");
                            applied.push((d.id, ins.loc));
                        } else {
                            cov::hit(ctx.vendor, "ubsan.rs", "check_emitted");
                            out.push(Instr::effect(
                                Op::UbsanCheckArith { op: *op, a: *a, b: *rb, ty: *ty },
                                ins.loc,
                            ));
                        }
                        out.push(ins);
                    }
                    // Division and remainder.
                    Op::Bin { op: op @ (BinKind::Div | BinKind::Rem), a, b: rb, ty } => {
                        if !ctx.policy.keeps(&f.name, ins.loc) {
                            cov::hit(ctx.vendor, "ubsan.rs", "policy_skip");
                            skipped.push(ins.loc);
                            out.push(ins);
                            continue;
                        }
                        cov::hit(ctx.vendor, "ubsan.rs", "div_check");
                        let defect = active.iter().find(|d| match d.trigger {
                            Trigger::BoolWidenedDivisor => {
                                chain_any(&defs, &metas, *rb, 0, &|_, m| m.bool_widened)
                            }
                            Trigger::RemUnchecked => *op == BinKind::Rem,
                            _ => false,
                        });
                        if let Some(d) = defect {
                            cov::hit(ctx.vendor, "ubsan.rs", "defect_suppressed");
                            applied.push((d.id, ins.loc));
                        } else {
                            let wrong_line =
                                active.iter().find(|d| d.trigger == Trigger::DivWrongLine);
                            let mut loc = ins.loc;
                            if let Some(d) = wrong_line {
                                cov::hit(ctx.vendor, "ubsan.rs", "wrong_line_emitted");
                                loc.line = loc.line.saturating_sub(1);
                                applied.push((d.id, ins.loc));
                            } else {
                                cov::hit(ctx.vendor, "ubsan.rs", "check_emitted");
                            }
                            out.push(Instr::effect(
                                Op::UbsanCheckDiv { a: *a, divisor: *rb, ty: *ty },
                                loc,
                            ));
                        }
                        out.push(ins);
                    }
                    // Shift exponents.
                    Op::Bin { op: BinKind::Shl | BinKind::Shr, a: _, b: rb, ty }
                        if ins.meta.sanitize =>
                    {
                        if !ctx.policy.keeps(&f.name, ins.loc) {
                            cov::hit(ctx.vendor, "ubsan.rs", "policy_skip");
                            skipped.push(ins.loc);
                            out.push(ins);
                            continue;
                        }
                        cov::hit(ctx.vendor, "ubsan.rs", "shift_check");
                        let bits = ty.promoted().width.bits() as u8;
                        let defect = active.iter().find(|d| match d.trigger {
                            Trigger::CharShiftAmount => ins.meta.char_shift_amount,
                            Trigger::LongShift => bits == 64,
                            Trigger::ShiftAmountCast => chain_has_cast(&defs, &metas, *rb),
                            _ => false,
                        });
                        if let Some(d) = defect {
                            cov::hit(ctx.vendor, "ubsan.rs", "defect_suppressed");
                            applied.push((d.id, ins.loc));
                        } else {
                            cov::hit(ctx.vendor, "ubsan.rs", "check_emitted");
                            out.push(Instr::effect(
                                Op::UbsanCheckShift { amount: *rb, bits },
                                ins.loc,
                            ));
                        }
                        out.push(ins);
                    }
                    // Negation overflow.
                    Op::Un { op: UnKind::Neg, a, ty } if ins.meta.sanitize && ty.signed => {
                        if !ctx.policy.keeps(&f.name, ins.loc) {
                            cov::hit(ctx.vendor, "ubsan.rs", "policy_skip");
                            skipped.push(ins.loc);
                            out.push(ins);
                            continue;
                        }
                        cov::hit(ctx.vendor, "ubsan.rs", "neg_check");
                        let defect =
                            active.iter().find(|d| d.trigger == Trigger::NegationUnchecked);
                        if let Some(d) = defect {
                            cov::hit(ctx.vendor, "ubsan.rs", "defect_suppressed");
                            applied.push((d.id, ins.loc));
                        } else {
                            cov::hit(ctx.vendor, "ubsan.rs", "check_emitted");
                            out.push(Instr::effect(Op::UbsanCheckNeg { a: *a, ty: *ty }, ins.loc));
                        }
                        out.push(ins);
                    }
                    // Null checks on pointer dereferences; array-bound checks.
                    Op::Load { addr, .. } | Op::Store { addr, .. } => {
                        let (root, _) = addr_root(&defs, *addr);
                        if let Some(Op::Load { .. }) = root {
                            if !ctx.policy.keeps(&f.name, ins.loc) {
                                cov::hit(ctx.vendor, "ubsan.rs", "policy_skip");
                                skipped.push(ins.loc);
                                out.push(ins);
                                continue;
                            }
                            cov::hit(ctx.vendor, "ubsan.rs", "null_check");
                            let rmw_defect = active.iter().find(|d| {
                                d.trigger == Trigger::RmwNullCheck && ins.meta.rmw
                            });
                            if let Some(d) = rmw_defect {
                                cov::hit(ctx.vendor, "ubsan.rs", "defect_suppressed");
                                applied.push((d.id, ins.loc));
                            } else {
                                let after_offset = active
                                    .iter()
                                    .find(|d| d.trigger == Trigger::NullCheckAfterOffset);
                                let checked = if let Some(d) = after_offset {
                                    // Defective: check the post-offset address.
                                    if root_reg(&defs, *addr) != *addr {
                                        applied.push((d.id, ins.loc));
                                    }
                                    *addr
                                } else {
                                    root_reg(&defs, *addr)
                                };
                                cov::hit(ctx.vendor, "ubsan.rs", "check_emitted");
                                out.push(Instr::effect(
                                    Op::UbsanCheckNull { addr: checked },
                                    ins.loc,
                                ));
                            }
                        }
                        out.push(ins);
                    }
                    // Array bound checks ride on address computations.
                    Op::PtrAdd { base: Operand::Reg(br), offset, scale } if *scale > 0 => {
                        let bound = match defs.get(br) {
                            Some(Op::AddrGlobal(g)) => {
                                let gd = &globals[*g];
                                (gd.elem_count > 1 && gd.elem_size as i64 == *scale)
                                    .then_some(gd.elem_count as u64)
                            }
                            Some(Op::AddrLocal(s)) => {
                                let slot = &f.slots[*s];
                                (slot.size as i64 > *scale && slot.size as i64 % *scale == 0)
                                    .then_some((slot.size as i64 / *scale) as u64)
                            }
                            _ => None,
                        };
                        if let Some(bound) = bound {
                            if !ctx.policy.keeps(&f.name, ins.loc) {
                                cov::hit(ctx.vendor, "ubsan.rs", "policy_skip");
                                skipped.push(ins.loc);
                                out.push(ins);
                                continue;
                            }
                            cov::hit(ctx.vendor, "ubsan.rs", "bound_check");
                            let is_global_array =
                                matches!(defs.get(br), Some(Op::AddrGlobal(_)));
                            let defect = active.iter().find(|d| match d.trigger {
                                Trigger::IndexIsSumOfLoads => {
                                    index_is_sum_of_loads(&defs, *offset)
                                }
                                Trigger::BoundOffByOne => is_global_array,
                                _ => false,
                            });
                            match defect {
                                Some(d) if d.trigger == Trigger::BoundOffByOne => {
                                    cov::hit(ctx.vendor, "ubsan.rs", "off_by_one_bound");
                                    applied.push((d.id, ins.loc));
                                    out.push(Instr::effect(
                                        Op::UbsanCheckBound { idx: *offset, bound: bound + 1 },
                                        ins.loc,
                                    ));
                                }
                                Some(d) => {
                                    cov::hit(ctx.vendor, "ubsan.rs", "defect_suppressed");
                                    applied.push((d.id, ins.loc));
                                }
                                None => {
                                    cov::hit(ctx.vendor, "ubsan.rs", "check_emitted");
                                    out.push(Instr::effect(
                                        Op::UbsanCheckBound { idx: *offset, bound },
                                        ins.loc,
                                    ));
                                }
                            }
                        }
                        out.push(ins);
                    }
                    _ => out.push(ins),
                }
            }
            b.instrs = out;
        }
    }
    m.san.applied_defects.extend(applied);
    m.san.skipped_sites.extend(skipped);
}

/// The root pointer value of an address chain (for null checks).
fn root_reg(defs: &HashMap<RegId, Op>, addr: Operand) -> Operand {
    let mut cur = addr;
    loop {
        match cur {
            Operand::Reg(r) => match defs.get(&r) {
                Some(Op::PtrAdd { base, .. }) => cur = *base,
                _ => return cur,
            },
            imm => return imm,
        }
    }
}

fn chain_has_cast(
    defs: &HashMap<RegId, Op>,
    metas: &HashMap<RegId, Meta>,
    o: Operand,
) -> bool {
    chain_any(defs, metas, o, 0, &|op, _| matches!(op, Op::Cast { .. }))
}

fn chain_is_narrow(
    defs: &HashMap<RegId, Op>,
    metas: &HashMap<RegId, Meta>,
    o: Operand,
) -> bool {
    chain_any(defs, metas, o, 0, &|op, _| {
        matches!(op, Op::Load { size: 1 | 2, .. })
            || matches!(op, Op::Cast { to, .. } if to.width.bits() <= 16)
    })
}

fn index_is_sum_of_loads(defs: &HashMap<RegId, Op>, idx: Operand) -> bool {
    let Operand::Reg(r) = idx else { return false };
    match defs.get(&r) {
        Some(Op::Bin { op: BinKind::Add, a: Operand::Reg(x), b: Operand::Reg(y), .. }) => {
            matches!(defs.get(x), Some(Op::Load { .. }))
                && matches!(defs.get(y), Some(Op::Load { .. }))
        }
        _ => false,
    }
}

/// Post-pass for the `ArithFeedsGlobalStore` defect: removes arithmetic
/// checks whose guarded value is stored straight into a global.
pub fn ubsan_global_store_fixup(m: &mut Module, ctx: &SanCtx<'_>) {
    let Some(d) = ctx
        .active(Sanitizer::Ubsan)
        .into_iter()
        .find(|d| d.trigger == Trigger::ArithFeedsGlobalStore)
    else {
        return;
    };
    let mut applied = Vec::new();
    for f in &mut m.funcs {
        let defs = defs_of(f);
        for b in &mut f.blocks {
            // Registers stored directly to globals.
            let mut global_fed: HashSet<RegId> = HashSet::new();
            for i in &b.instrs {
                if let Op::Store { addr, val: Operand::Reg(v), .. } = &i.op {
                    if matches!(addr_root(&defs, *addr).0, Some(Op::AddrGlobal(_))) {
                        global_fed.insert(*v);
                    }
                }
            }
            // Map check → guarded register (the following Bin's dst).
            let dst_for: Vec<((BinKind, Operand, Operand), RegId)> = b
                .instrs
                .iter()
                .filter_map(|i| match (&i.op, i.dst) {
                    (Op::Bin { op, a, b, .. }, Some(d)) => Some(((*op, *a, *b), d)),
                    _ => None,
                })
                .collect();
            b.instrs.retain(|i| match &i.op {
                Op::UbsanCheckArith { op, a, b, .. } => {
                    let fed = dst_for
                        .iter()
                        .find(|(k, _)| *k == (*op, *a, *b))
                        .is_some_and(|(_, d2)| global_fed.contains(d2));
                    if fed {
                        applied.push((d.id, i.loc));
                    }
                    !fed
                }
                _ => true,
            });
        }
    }
    m.san.applied_defects.extend(applied);
}

// ---------------------------------------------------------------------------
// MSan
// ---------------------------------------------------------------------------

/// Runs the MemorySanitizer pass (LLVM only; the pipeline rejects GCC+MSan).
pub fn run_msan(m: &mut Module, ctx: &SanCtx<'_>) {
    cov::hit(ctx.vendor, "msan.rs", "run");
    m.san.sanitizer = Some(Sanitizer::Msan);
    let active = ctx.active(Sanitizer::Msan);
    if let Some(d) = active.iter().find(|d| d.trigger == Trigger::MsanSubConst) {
        cov::hit(ctx.vendor, "msan.rs", "policy_defective");
        m.san.msan_policy.sub_const_fully_defined = true;
        m.san.applied_defects.push((d.id, Loc::UNKNOWN));
    } else {
        cov::hit(ctx.vendor, "msan.rs", "policy_correct");
    }
    let mut skipped: Vec<Loc> = Vec::new();
    for f in &mut m.funcs {
        for b in &mut f.blocks {
            // Checks on branch conditions.
            if let Some(Term::Br { cond, .. }) = &b.term {
                let cond = *cond;
                let loc = b.instrs.last().map_or(Loc::UNKNOWN, |i| i.loc);
                if !ctx.policy.keeps(&f.name, loc) {
                    cov::hit(ctx.vendor, "msan.rs", "policy_skip");
                    skipped.push(loc);
                } else {
                    cov::hit(ctx.vendor, "msan.rs", "branch_check");
                    b.instrs.push(Instr::effect(
                        Op::MsanCheck { val: cond, what: MsanUse::Branch },
                        loc,
                    ));
                }
            }
            // Checks on divisors and printed values.
            let mut out: Vec<Instr> = Vec::with_capacity(b.instrs.len() * 2);
            for ins in b.instrs.drain(..) {
                match &ins.op {
                    Op::Bin { op: BinKind::Div | BinKind::Rem, b: rb, .. } => {
                        if !ctx.policy.keeps(&f.name, ins.loc) {
                            cov::hit(ctx.vendor, "msan.rs", "policy_skip");
                            skipped.push(ins.loc);
                            out.push(ins);
                            continue;
                        }
                        cov::hit(ctx.vendor, "msan.rs", "div_check");
                        out.push(Instr::effect(
                            Op::MsanCheck { val: *rb, what: MsanUse::Divisor },
                            ins.loc,
                        ));
                        out.push(ins);
                    }
                    Op::Print { val } => {
                        if !ctx.policy.keeps(&f.name, ins.loc) {
                            cov::hit(ctx.vendor, "msan.rs", "policy_skip");
                            skipped.push(ins.loc);
                            out.push(ins);
                            continue;
                        }
                        cov::hit(ctx.vendor, "msan.rs", "output_check");
                        out.push(Instr::effect(
                            Op::MsanCheck { val: *val, what: MsanUse::Output },
                            ins.loc,
                        ));
                        out.push(ins);
                    }
                    _ => out.push(ins),
                }
            }
            b.instrs = out;
        }
    }
    m.san.skipped_sites.extend(skipped);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defects::DefectRegistry;
    use crate::pipeline::{compile, CompileConfig};
    use crate::target::OptLevel;
    use ubfuzz_minic::parse;

    fn count_ops(m: &Module, pred: impl Fn(&Op) -> bool) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.instrs.iter())
            .filter(|i| pred(&i.op))
            .count()
    }

    fn build(src: &str, san: Option<Sanitizer>, reg: &DefectRegistry) -> Module {
        let p = parse(src).unwrap();
        compile(&p, &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, san, reg)).unwrap()
    }

    #[test]
    fn asan_pass_inserts_checks_for_memory_accesses() {
        let reg = DefectRegistry::pristine();
        let src = "int a[4];
                   int i = 1;
                   int main(void) { a[i] = a[0] + 1; return a[i]; }";
        let plain = build(src, None, &reg);
        assert_eq!(count_ops(&plain, |o| matches!(o, Op::AsanCheck { .. })), 0);
        let asan = build(src, Some(Sanitizer::Asan), &reg);
        let checks = count_ops(&asan, |o| matches!(o, Op::AsanCheck { .. }));
        let accesses =
            count_ops(&asan, |o| matches!(o, Op::Load { .. } | Op::Store { .. }));
        assert!(checks > 0, "ASan inserts checks");
        assert!(checks >= accesses, "every access checked at -O0: {checks} < {accesses}");
    }

    #[test]
    fn ubsan_pass_inserts_kind_specific_checks() {
        let reg = DefectRegistry::pristine();
        let src = "int x = 9; int y = 2;
                   int main(void) {
                       int q = x / y;
                       int s = x << (y & 7);
                       int a = x + y;
                       print_value(q + s + a);
                       return 0;
                   }";
        let m = build(src, Some(Sanitizer::Ubsan), &reg);
        assert!(count_ops(&m, |o| matches!(o, Op::UbsanCheckDiv { .. })) > 0);
        assert!(count_ops(&m, |o| matches!(o, Op::UbsanCheckShift { .. })) > 0);
        assert!(count_ops(&m, |o| matches!(o, Op::UbsanCheckArith { .. })) > 0);
        // ASan never emits arithmetic checks (the Table 2 separation).
        let m = build(src, Some(Sanitizer::Asan), &reg);
        assert_eq!(count_ops(&m, |o| matches!(o, Op::UbsanCheckDiv { .. })), 0);
        assert_eq!(count_ops(&m, |o| matches!(o, Op::UbsanCheckArith { .. })), 0);
    }

    #[test]
    fn defect_world_suppresses_checks_relative_to_pristine() {
        // The Fig. 1 program: the GCC ASan defect *removes* a check the
        // pristine pass would insert — visible in the IR before any
        // execution. Attribution metadata records the application.
        let src = "
            struct a { int x; };
            struct a b[2];
            struct a *c = b;
            struct a *d = b;
            int k = 0;
            int main(void) {
                c->x = b[0].x;
                k = 2;
                c->x = (d + k)->x;
                return c->x;
            }";
        let p = parse(src).unwrap();
        let pristine_reg = DefectRegistry::pristine();
        let full_reg = DefectRegistry::full();
        let mk = |reg| {
            compile(&p, &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), reg))
                .unwrap()
        };
        let pristine = mk(&pristine_reg);
        let defective = mk(&full_reg);
        let cp = count_ops(&pristine, |o| matches!(o, Op::AsanCheck { .. }));
        let cd = count_ops(&defective, |o| matches!(o, Op::AsanCheck { .. }));
        assert!(cd < cp, "defect suppressed a check: {cd} >= {cp}");
        assert!(pristine.san.applied_defects.is_empty());
        assert!(!defective.san.applied_defects.is_empty());
    }

    #[test]
    fn msan_pass_checks_branch_conditions() {
        let reg = DefectRegistry::pristine();
        let src = "int g;
                   int main(void) { if (g > 1) { print_value(g); } return 0; }";
        let p = parse(src).unwrap();
        let m = compile(
            &p,
            &CompileConfig::dev(Vendor::Llvm, OptLevel::O0, Some(Sanitizer::Msan), &reg),
        )
        .unwrap();
        assert!(count_ops(&m, |o| matches!(o, Op::MsanCheck { .. })) > 0);
    }

    #[test]
    fn table2_matrix() {
        use UbKind::*;
        assert!(supports(Sanitizer::Asan, BufOverflowArray));
        assert!(supports(Sanitizer::Ubsan, BufOverflowArray));
        assert!(!supports(Sanitizer::Ubsan, BufOverflowPtr));
        assert!(supports(Sanitizer::Asan, UseAfterFree));
        assert!(supports(Sanitizer::Asan, UseAfterScope));
        assert!(supports(Sanitizer::Ubsan, NullDeref));
        assert!(supports(Sanitizer::Ubsan, IntOverflow));
        assert!(supports(Sanitizer::Ubsan, ShiftOverflow));
        assert!(supports(Sanitizer::Ubsan, DivByZero));
        assert!(supports(Sanitizer::Msan, UninitUse));
        assert!(!supports(Sanitizer::Msan, NullDeref));
        assert_eq!(sanitizers_for(BufOverflowArray).len(), 2);
        assert_eq!(sanitizers_for(UninitUse).as_slice(), &[Sanitizer::Msan]);
        assert!(sanitizers_for(BufOverflowPtr).iter().eq([Sanitizer::Asan]));
    }
}
