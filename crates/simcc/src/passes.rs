//! Optimization passes.
//!
//! These run *before* the sanitizer pass (paper Fig. 2), which is why they
//! can delete undefined behavior that the sanitizer then never sees
//! (Fig. 3) — the phenomenon crash-site mapping exists to disambiguate.
//! A restricted subset re-runs after instrumentation ("late" opts) and must
//! preserve sanitizer checks.

use crate::ir::*;
use std::collections::{HashMap, HashSet};
use ubfuzz_minic::types::IntType;

/// Folds a binary machine operation; `None` when not foldable (division by
/// zero or out-of-range shift — those trap at runtime).
pub fn fold_bin(op: BinKind, a: i64, b: i64, ty: IntType) -> Option<i64> {
    let (wa, wb) = (ty.wrap(a as i128), ty.wrap(b as i128));
    let v: i128 = match op {
        BinKind::Add => wa.wrapping_add(wb),
        BinKind::Sub => wa.wrapping_sub(wb),
        BinKind::Mul => wa.wrapping_mul(wb),
        BinKind::Div => {
            if wb == 0 {
                return None;
            }
            wa.wrapping_div(wb)
        }
        BinKind::Rem => {
            if wb == 0 {
                return None;
            }
            wa.wrapping_rem(wb)
        }
        BinKind::Shl | BinKind::Shr => {
            let bits = ty.promoted().width.bits() as i128;
            if wb < 0 || wb >= bits {
                return None;
            }
            if op == BinKind::Shl {
                wa.wrapping_shl(wb as u32)
            } else if ty.signed {
                wa >> wb
            } else {
                (((wa as u128) & (u128::MAX >> (128 - bits))) >> wb) as i128
            }
        }
        BinKind::And => wa & wb,
        BinKind::Or => wa | wb,
        BinKind::Xor => wa ^ wb,
        BinKind::Lt => i128::from(wa < wb),
        BinKind::Le => i128::from(wa <= wb),
        BinKind::Gt => i128::from(wa > wb),
        BinKind::Ge => i128::from(wa >= wb),
        BinKind::Eq => i128::from(wa == wb),
        BinKind::Ne => i128::from(wa != wb),
    };
    Some(ty.wrap(v) as i64)
}

/// Folds a unary machine operation.
pub fn fold_un(op: UnKind, a: i64, ty: IntType) -> i64 {
    let wa = ty.wrap(a as i128);
    let v = match op {
        UnKind::Neg => ty.wrap(wa.wrapping_neg()),
        UnKind::Not => ty.wrap(!wa),
        UnKind::LogicalNot => i128::from(wa == 0),
    };
    v as i64
}

/// Constant folding + copy propagation to fixpoint within each function.
pub fn constfold(m: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut m.funcs {
        loop {
            // reg → constant value
            let mut consts: HashMap<RegId, i64> = HashMap::new();
            for b in &f.blocks {
                for i in &b.instrs {
                    if let (Some(d), Op::Const(v)) = (i.dst, &i.op) {
                        consts.insert(d, *v);
                    }
                }
            }
            let mut round = false;
            for b in &mut f.blocks {
                for i in &mut b.instrs {
                    i.op.map_operands(|o| match o {
                        Operand::Reg(r) if consts.contains_key(&r) => {
                            round = true;
                            Operand::Imm(consts[&r])
                        }
                        other => other,
                    });
                    // Fold now-constant operations.
                    let folded = match &i.op {
                        Op::Bin { op, a: Operand::Imm(x), b: Operand::Imm(y), ty } => {
                            fold_bin(*op, *x, *y, *ty)
                        }
                        Op::Un { op, a: Operand::Imm(x), ty } => Some(fold_un(*op, *x, *ty)),
                        Op::Cast { a: Operand::Imm(x), to } => Some(to.wrap(*x as i128) as i64),
                        Op::PtrAdd { base: Operand::Imm(b2), offset: Operand::Imm(o), scale } => {
                            Some(b2 + o * scale)
                        }
                        _ => None,
                    };
                    if let Some(v) = folded {
                        if !matches!(i.op, Op::Const(_)) {
                            i.op = Op::Const(v);
                            round = true;
                        }
                    }
                }
                if let Some(t) = &mut b.term {
                    match t {
                        Term::Br { cond, .. } => {
                            if let Operand::Reg(r) = cond {
                                if let Some(v) = consts.get(r) {
                                    *cond = Operand::Imm(*v);
                                    round = true;
                                }
                            }
                        }
                        Term::Ret(Some(Operand::Reg(r))) => {
                            if let Some(v) = consts.get(r) {
                                *t = Term::Ret(Some(Operand::Imm(*v)));
                                round = true;
                            }
                        }
                        _ => {}
                    }
                }
            }
            // Remove now-dead Const instructions opportunistically; full DCE
            // handles the rest.
            if !round {
                break;
            }
            changed = true;
        }
    }
    changed
}

/// Dead code elimination. `remove_loads` is true only in the early (pre-
/// sanitizer) pipeline: once checks are attached to accesses, loads stay.
pub fn dce(m: &mut Module, remove_loads: bool) -> bool {
    let mut changed = false;
    for f in &mut m.funcs {
        loop {
            let mut used: HashSet<RegId> = HashSet::new();
            for b in &f.blocks {
                for i in &b.instrs {
                    for o in i.op.operands() {
                        if let Operand::Reg(r) = o {
                            used.insert(r);
                        }
                    }
                }
                match &b.term {
                    Some(Term::Br { cond: Operand::Reg(r), .. }) => {
                        used.insert(*r);
                    }
                    Some(Term::Ret(Some(Operand::Reg(r)))) => {
                        used.insert(*r);
                    }
                    _ => {}
                }
            }
            let mut removed = false;
            for b in &mut f.blocks {
                let before = b.instrs.len();
                b.instrs.retain(|i| {
                    let removable = match &i.op {
                        Op::Load { .. } => remove_loads,
                        op => !op.has_side_effect(),
                    };
                    !(removable && i.dst.is_none_or(|d| !used.contains(&d)))
                });
                if b.instrs.len() != before {
                    removed = true;
                }
            }
            if !removed {
                break;
            }
            changed = true;
        }
    }
    changed
}

/// A symbolic memory location: (base, byte offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Base {
    Slot(usize),
    Global(usize),
}

/// Resolves an address operand to a symbolic location using the def chain.
fn resolve_addr(
    defs: &HashMap<RegId, Op>,
    addr: Operand,
) -> Option<(Base, i64)> {
    match addr {
        Operand::Imm(_) => None,
        Operand::Reg(r) => match defs.get(&r)? {
            Op::AddrLocal(s) => Some((Base::Slot(*s), 0)),
            Op::AddrGlobal(g) => Some((Base::Global(*g), 0)),
            Op::PtrAdd { base, offset: Operand::Imm(o), scale } => {
                let (b, off) = resolve_addr(defs, *base)?;
                Some((b, off + o * scale))
            }
            _ => None,
        },
    }
}

/// Block-local store-to-load forwarding, load CSE, and dead store
/// elimination. Runs only in the early pipeline.
pub fn memopt(m: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut m.funcs {
        let mut defs: HashMap<RegId, Op> = HashMap::new();
        for b in &f.blocks {
            for i in &b.instrs {
                if let Some(d) = i.dst {
                    defs.insert(d, i.op.clone());
                }
            }
        }
        for b in &mut f.blocks {
            // location → (value operand, size, index of defining store or None)
            let mut known: HashMap<(Base, i64), (Operand, u8, Option<usize>)> = HashMap::new();
            let mut kill: Vec<usize> = Vec::new();
            for idx in 0..b.instrs.len() {
                let (op, _loc) = (b.instrs[idx].op.clone(), b.instrs[idx].loc);
                match &op {
                    Op::Load { addr, size, signed } => {
                        if let Some(loc) = resolve_addr(&defs, *addr) {
                            if let Some((val, vsize, _)) = known.get(&loc) {
                                if vsize == size {
                                    // Forward the value through a cast that
                                    // models the store/load round-trip: the
                                    // load's own signedness decides whether
                                    // the truncated value re-extends with
                                    // sign or zero.
                                    b.instrs[idx].op = Op::Cast {
                                        a: *val,
                                        to: match (size, signed) {
                                            (1, true) => IntType::CHAR,
                                            (1, false) => IntType::UCHAR,
                                            (2, true) => IntType::SHORT,
                                            (2, false) => IntType::USHORT,
                                            (4, true) => IntType::INT,
                                            (4, false) => IntType::UINT,
                                            (_, true) => IntType::LONG,
                                            (_, false) => IntType::ULONG,
                                        },
                                    };
                                    changed = true;
                                    continue;
                                }
                            }
                            // Record loaded value for load CSE; mark every
                            // store to this location as observed.
                            if let Some(d) = b.instrs[idx].dst {
                                known.insert(loc, (Operand::Reg(d), *size, None));
                            }
                        } else {
                            // Unknown load: observes everything — stores
                            // before it become un-eliminable.
                            for v in known.values_mut() {
                                v.2 = None;
                            }
                        }
                    }
                    Op::Store { addr, val, size } => {
                        if let Some(loc) = resolve_addr(&defs, *addr) {
                            if let Some((_, psize, Some(pidx))) = known.get(&loc) {
                                if psize == size {
                                    // Previous store to the same location was
                                    // never read: dead store.
                                    kill.push(*pidx);
                                    changed = true;
                                }
                            }
                            known.insert(loc, (*val, *size, Some(idx)));
                        } else {
                            // Unknown store: clobbers everything.
                            known.clear();
                        }
                    }
                    Op::Call { .. } | Op::Free { .. } | Op::MemCopy { .. } => known.clear(),
                    Op::LifetimeEnd(s) | Op::LifetimeStart(s) => {
                        known.retain(|k, _| k.0 != Base::Slot(*s));
                    }
                    _ => {}
                }
            }
            kill.sort_unstable();
            kill.dedup();
            for &i in kill.iter().rev() {
                b.instrs.remove(i);
            }
        }
    }
    changed
}

/// Eliminates stores to slots that are never read and whose address never
/// escapes — the main way the optimizer deletes UB before the sanitizer sees
/// it (paper Fig. 3, dead `d[1] = 1`).
pub fn dead_slot_elim(m: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut m.funcs {
        // For each slot, find whether its address (including addresses
        // derived through `PtrAdd`, i.e. element/member addresses) is only
        // used as a direct store target.
        let mut addr_regs: HashMap<RegId, usize> = HashMap::new();
        for _ in 0..3 {
            for b in &f.blocks {
                for i in &b.instrs {
                    match (i.dst, &i.op) {
                        (Some(d), Op::AddrLocal(s)) => {
                            addr_regs.insert(d, *s);
                        }
                        (Some(d), Op::PtrAdd { base: Operand::Reg(r), .. }) => {
                            if let Some(&s) = addr_regs.get(r) {
                                addr_regs.insert(d, s);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        let mut loaded: HashSet<usize> = HashSet::new();
        let mut escaped: HashSet<usize> = HashSet::new();
        for b in &f.blocks {
            for i in &b.instrs {
                match &i.op {
                    Op::Store { addr, val, .. } => {
                        if let Operand::Reg(r) = val {
                            if let Some(&s) = addr_regs.get(r) {
                                escaped.insert(s);
                            }
                        }
                        let _ = addr;
                    }
                    Op::Load { addr, .. } => {
                        if let Operand::Reg(r) = addr {
                            if let Some(&s) = addr_regs.get(r) {
                                loaded.insert(s);
                            }
                        }
                    }
                    Op::PtrAdd { base: Operand::Reg(_), offset, .. } => {
                        // Deriving an element address is fine; using a slot
                        // address as the *index* is an escape.
                        if let Operand::Reg(r) = offset {
                            if let Some(&s) = addr_regs.get(r) {
                                escaped.insert(s);
                            }
                        }
                    }
                    other => {
                        for o in other.operands() {
                            if let Operand::Reg(r) = o {
                                if let Some(&s) = addr_regs.get(&r) {
                                    escaped.insert(s);
                                }
                            }
                        }
                    }
                }
            }
            if let Some(Term::Br { cond: Operand::Reg(r), .. }) = &b.term {
                if let Some(&s) = addr_regs.get(r) {
                    escaped.insert(s);
                }
            }

        }
        let dead: HashSet<usize> = (0..f.slots.len())
            .filter(|s| !loaded.contains(s) && !escaped.contains(s))
            .collect();
        if dead.is_empty() {
            continue;
        }
        for b in &mut f.blocks {
            let before = b.instrs.len();
            b.instrs.retain(|i| match &i.op {
                Op::Store { addr: Operand::Reg(r), .. } => {
                    !addr_regs.get(r).is_some_and(|s| dead.contains(s))
                }
                _ => true,
            });
            if b.instrs.len() != before {
                changed = true;
            }
        }
    }
    changed
}

/// CFG simplification: constant branches become jumps; unreachable blocks
/// are emptied (indices are preserved).
pub fn simplify_cfg(m: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut m.funcs {
        for b in &mut f.blocks {
            if let Some(Term::Br { cond: Operand::Imm(v), then_bb, else_bb }) = &b.term {
                let target = if *v != 0 { *then_bb } else { *else_bb };
                b.term = Some(Term::Jmp(target));
                changed = true;
            }
        }
        // Reachability from entry.
        let mut reach = vec![false; f.blocks.len()];
        let mut stack = vec![0usize];
        while let Some(x) = stack.pop() {
            if reach[x] {
                continue;
            }
            reach[x] = true;
            if let Some(t) = &f.blocks[x].term {
                stack.extend(t.successors());
            }
        }
        for (bi, b) in f.blocks.iter_mut().enumerate() {
            let trivial_ret = b.instrs.is_empty() && matches!(b.term, Some(Term::Ret(_)));
            if !reach[bi] && !trivial_ret {
                b.instrs.clear();
                b.term = Some(Term::Ret(Some(Operand::Imm(0))));
                changed = true;
            }
        }
    }
    changed
}

/// Per-block "is part of a loop" analysis (a block that can reach itself).
pub fn blocks_in_loops(f: &Func) -> Vec<bool> {
    let n = f.blocks.len();
    let mut reach = vec![vec![false; n]; n];
    for (bi, b) in f.blocks.iter().enumerate() {
        if let Some(t) = &b.term {
            for s in t.successors() {
                reach[bi][s] = true;
            }
        }
    }
    // Floyd–Warshall closure (CFGs here are tiny).
    for k in 0..n {
        // Row k cannot gain entries during its own phase; snapshot it.
        let row_k = reach[k].clone();
        for row in reach.iter_mut() {
            if row[k] {
                for (j, r) in row_k.iter().enumerate() {
                    if *r {
                        row[j] = true;
                    }
                }
            }
        }
    }
    (0..n).map(|i| reach[i][i]).collect()
}

/// The canonical counted loop recognized by the unroller.
struct CountedLoop {
    cond_bb: BlockId,
    body_bb: BlockId,
    step_bb: BlockId,
    exit_bb: BlockId,
    trip: i64,
}

fn find_counted_loop(f: &Func, consts: &HashMap<(Base, i64), i64>) -> Option<CountedLoop> {
    for (ci, cb) in f.blocks.iter().enumerate() {
        let Some(Term::Br { cond: Operand::Reg(cr), then_bb, else_bb }) = cb.term else {
            continue;
        };
        // cond block: [AddrLocal(i) -> r0, Load r0 -> r1, Bin Lt r1, Imm N -> cr]
        let defs: HashMap<RegId, &Op> = cb
            .instrs
            .iter()
            .filter_map(|i| i.dst.map(|d| (d, &i.op)))
            .collect();
        let Some(Op::Bin { op: BinKind::Lt, a: Operand::Reg(la), b: Operand::Imm(n), .. }) =
            defs.get(&cr)
        else {
            continue;
        };
        let Some(Op::Load { addr: Operand::Reg(ar), .. }) = defs.get(la) else { continue };
        let Some(Op::AddrLocal(islot)) = defs.get(ar) else { continue };
        // Initial value from the pre-header constant map.
        let Some(&c0) = consts.get(&(Base::Slot(*islot), 0)) else { continue };
        // Body: single block that jumps to step; step: i += 1 then back.
        let body_bb = then_bb;
        let exit_bb = else_bb;
        let Some(Term::Jmp(step_bb)) = f.blocks[body_bb].term else { continue };
        if step_bb == ci || step_bb == body_bb {
            continue;
        }
        let Some(Term::Jmp(back)) = f.blocks[step_bb].term else { continue };
        if back != ci {
            continue;
        }
        // Step block increments the same slot by 1.
        let sdefs: HashMap<RegId, &Op> = f.blocks[step_bb]
            .instrs
            .iter()
            .filter_map(|i| i.dst.map(|d| (d, &i.op)))
            .collect();
        let mut ok = false;
        for i in &f.blocks[step_bb].instrs {
            if let Op::Store { addr: Operand::Reg(a), val: Operand::Reg(v), .. } = &i.op {
                if let (Some(Op::AddrLocal(s)), Some(Op::Bin { op: BinKind::Add, b: Operand::Imm(1), .. })) =
                    (sdefs.get(a), sdefs.get(v))
                {
                    if s == islot {
                        ok = true;
                    }
                }
            }
        }
        if !ok {
            continue;
        }
        // Body must not write the counter.
        let body_writes_i = f.blocks[body_bb].instrs.iter().any(|i| {
            matches!(&i.op, Op::Store { addr: Operand::Reg(r), .. }
                if matches!(
                    f.blocks[body_bb].instrs.iter().find(|x| x.dst == Some(*r)).map(|x| &x.op),
                    Some(Op::AddrLocal(s)) if s == islot))
        });
        if body_writes_i {
            continue;
        }
        let trip = n - c0;
        if trip <= 0 {
            continue;
        }
        return Some(CountedLoop { cond_bb: ci, body_bb, step_bb, exit_bb, trip });
    }
    None
}

/// Full unrolling of canonical counted loops with trip count ≤ `threshold`.
/// Register names are remapped per copy to preserve single assignment;
/// source locations are preserved (debug metadata survives unrolling).
pub fn unroll(m: &mut Module, threshold: i64) -> bool {
    let mut changed = false;
    for f in &mut m.funcs {
        for _ in 0..4 {
            // Collect constants stored to slots in blocks that jump to a
            // cond block (loop pre-headers) — enough to see `i = 0`.
            let mut defs: HashMap<RegId, Op> = HashMap::new();
            for b in &f.blocks {
                for i in &b.instrs {
                    if let Some(d) = i.dst {
                        defs.insert(d, i.op.clone());
                    }
                }
            }
            let mut slot_consts: HashMap<(Base, i64), i64> = HashMap::new();
            for b in &f.blocks {
                for i in &b.instrs {
                    if let Op::Store { addr, val: Operand::Imm(v), .. } = &i.op {
                        if let Some(loc) = resolve_addr(&defs, *addr) {
                            // Last write wins; good enough for pre-headers.
                            slot_consts.insert(loc, *v);
                        }
                    }
                }
            }
            let Some(cl) = find_counted_loop(f, &slot_consts) else { break };
            if cl.trip > threshold {
                break;
            }
            // Build the straight-line replacement: trip × (body; step).
            let mut seq: Vec<Instr> = Vec::new();
            for _ in 0..cl.trip {
                for src_bb in [cl.body_bb, cl.step_bb] {
                    let base = f.next_reg;
                    let mut remap: HashMap<RegId, RegId> = HashMap::new();
                    let copies: Vec<Instr> = f.blocks[src_bb]
                        .instrs
                        .iter()
                        .map(|i| {
                            let mut c = i.clone();
                            if let Some(d) = c.dst {
                                let nd = base + remap.len() as u32;
                                remap.insert(d, nd);
                                c.dst = Some(nd);
                            }
                            c.op.map_operands(|o| match o {
                                Operand::Reg(r) => {
                                    Operand::Reg(remap.get(&r).copied().unwrap_or(r))
                                }
                                imm => imm,
                            });
                            c
                        })
                        .collect();
                    f.next_reg = base + remap.len() as u32;
                    seq.extend(copies);
                }
            }
            // The cond block becomes the unrolled straight-line code.
            f.blocks[cl.cond_bb].instrs = seq;
            f.blocks[cl.cond_bb].term = Some(Term::Jmp(cl.exit_bb));
            // Old body/step become unreachable; simplify_cfg clears them.
            changed = true;
        }
    }
    if changed {
        simplify_cfg(m);
    }
    changed
}

/// Inlines calls to small single-block callees. Inlined instructions keep
/// their callee source locations (like real debug info) and are tagged
/// [`Meta::inlined`].
pub fn inline(m: &mut Module, max_instrs: usize) -> bool {
    let mut changed = false;
    // Snapshot inlinable callees.
    let mut candidates: HashMap<String, Func> = HashMap::new();
    for f in &m.funcs {
        if f.name != "main"
            && f.blocks.len() == 1
            && f.blocks[0].instrs.len() <= max_instrs
            && matches!(f.blocks[0].term, Some(Term::Ret(_)))
        {
            candidates.insert(f.name.clone(), f.clone());
        }
    }
    if candidates.is_empty() {
        return false;
    }
    for f in &mut m.funcs {
        for bi in 0..f.blocks.len() {
            let mut idx = 0;
            while idx < f.blocks[bi].instrs.len() {
                let is_call = matches!(&f.blocks[bi].instrs[idx].op, Op::Call { callee, .. }
                    if candidates.contains_key(callee) && *callee != f.name);
                if !is_call {
                    idx += 1;
                    continue;
                }
                let call_instr = f.blocks[bi].instrs[idx].clone();
                let (callee_name, args) = match &call_instr.op {
                    Op::Call { callee, args } => (callee.clone(), args.clone()),
                    _ => unreachable!(),
                };
                let callee = &candidates[&callee_name];
                // Remap callee slots and registers into the caller.
                let slot_base = f.slots.len();
                for s in &callee.slots {
                    let mut s = s.clone();
                    s.name = format!("{}.{}", callee_name, s.name);
                    f.slots.push(s);
                }
                let reg_base = f.next_reg;
                let mut remap: HashMap<RegId, RegId> = HashMap::new();
                for (pi, pr) in callee.params.iter().enumerate() {
                    // Parameter registers map to argument operands; handled
                    // in the operand rewrite below via a sentinel map.
                    let _ = (pi, pr);
                }
                let mut new_instrs: Vec<Instr> = Vec::new();
                let mut ret_val: Option<Operand> = None;
                let map_operand = |o: Operand,
                                   remap: &HashMap<RegId, RegId>,
                                   params: &[RegId],
                                   args: &[Operand]|
                 -> Operand {
                    match o {
                        Operand::Reg(r) => {
                            if let Some(pi) = params.iter().position(|&p| p == r) {
                                args[pi]
                            } else if let Some(&nr) = remap.get(&r) {
                                Operand::Reg(nr)
                            } else {
                                Operand::Reg(r)
                            }
                        }
                        imm => imm,
                    }
                };
                for ci in &callee.blocks[0].instrs {
                    let mut c = ci.clone();
                    c.meta.inlined = true;
                    if let Some(d) = c.dst {
                        let nd = reg_base + remap.len() as u32;
                        remap.insert(d, nd);
                        c.dst = Some(nd);
                    }
                    let rm = remap.clone();
                    c.op.map_operands(|o| map_operand(o, &rm, &callee.params, &args));
                    // Slot references need remapping too.
                    c.op = match c.op {
                        Op::AddrLocal(s) => Op::AddrLocal(slot_base + s),
                        Op::LifetimeStart(s) => Op::LifetimeStart(slot_base + s),
                        Op::LifetimeEnd(s) => Op::LifetimeEnd(slot_base + s),
                        other => other,
                    };
                    new_instrs.push(c);
                }
                if let Some(Term::Ret(v)) = &callee.blocks[0].term {
                    ret_val = v.map(|o| map_operand(o, &remap, &callee.params, &args));
                }
                f.next_reg = reg_base + remap.len() as u32;
                // Replace the call with the body plus a copy into its dst.
                let mut tail = Vec::new();
                if let (Some(d), Some(v)) = (call_instr.dst, ret_val) {
                    tail.push(Instr {
                        dst: Some(d),
                        op: Op::Cast { a: v, to: IntType::LONG },
                        loc: call_instr.loc,
                        meta: Meta { inlined: true, ..Meta::default() },
                    });
                }
                let inserted = new_instrs.len() + tail.len();
                f.blocks[bi].instrs.splice(idx..=idx, new_instrs.into_iter().chain(tail));
                idx += inserted;
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use ubfuzz_minic::parse;

    fn module(src: &str) -> Module {
        lower(&parse(src).unwrap()).unwrap()
    }

    fn count_ops(m: &Module, pred: impl Fn(&Op) -> bool) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.instrs)
            .filter(|i| pred(&i.op))
            .count()
    }

    #[test]
    fn fold_bin_machine_semantics() {
        assert_eq!(fold_bin(BinKind::Add, i32::MAX as i64, 1, IntType::INT), Some(i32::MIN as i64));
        assert_eq!(fold_bin(BinKind::Div, 7, 0, IntType::INT), None);
        assert_eq!(fold_bin(BinKind::Shl, 1, 40, IntType::INT), None);
        assert_eq!(fold_bin(BinKind::Shr, -8, 1, IntType::INT), Some(-4));
        assert_eq!(fold_bin(BinKind::Lt, -1, 1, IntType::UINT), Some(0), "unsigned compare");
    }

    #[test]
    fn constfold_and_dce_shrink() {
        let mut m = module(
            "int g; int main(void) { int a = 3; int b = 4; g = a * b + 2; return 0; }",
        );
        memopt(&mut m);
        constfold(&mut m);
        dce(&mut m, true);
        // After forwarding + folding, the multiply is gone.
        assert_eq!(count_ops(&m, |o| matches!(o, Op::Bin { op: BinKind::Mul, .. })), 0);
    }

    #[test]
    fn memopt_forwards_global_stores() {
        // The Fig. 1 enabler: `k = 2; ... *(d + k)` sees k == 2.
        let mut m = module(
            "int k; int g; int main(void) { k = 2; g = k; return g; }",
        );
        memopt(&mut m);
        constfold(&mut m);
        // The load of k was replaced; a store of the constant 2 into g remains.
        let has_const_store = m
            .funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i.op, Op::Store { val: Operand::Imm(2), .. }));
        assert!(has_const_store);
    }

    #[test]
    fn memopt_forwarding_respects_unsigned_loads() {
        // Regression (found by differential fuzzing of this compiler): when
        // a store is forwarded to a following *unsigned* load, the
        // forwarding cast must zero-extend. It used to be always-signed, so
        // a 64-bit -1 stored into a 4-byte unsigned global read back as -1
        // instead of 2^32 - 1. The end-to-end check lives in `ubfuzz-simvm`
        // (`store_forwarding_zero_extends_unsigned_globals`).
        let mut m = module(
            "unsigned int g;
             int main(void) {
                g = 4294967295U;
                unsigned long c = (unsigned long)g;
                print_value((long)c);
                return 0;
             }",
        );
        memopt(&mut m);
        let unsigned_casts =
            count_ops(&m, |o| matches!(o, Op::Cast { to, .. } if *to == IntType::UINT));
        assert!(unsigned_casts > 0, "forwarded unsigned load keeps zero-extension");
        let signed_int_casts =
            count_ops(&m, |o| matches!(o, Op::Cast { to, .. } if *to == IntType::INT));
        assert_eq!(signed_int_casts, 0, "no sign-extending forward of an unsigned load");
    }

    #[test]
    fn dead_slot_elim_removes_ub_stores() {
        // Fig. 3 shape: a store to a never-read local is deleted wholesale.
        let mut m = module(
            "int main(void) { int d[2]; d[1] = 1; return 0; }",
        );
        let before = count_ops(&m, |o| matches!(o, Op::Store { .. }));
        dead_slot_elim(&mut m);
        let after = count_ops(&m, |o| matches!(o, Op::Store { .. }));
        assert!(after < before, "dead store removed: {before} -> {after}");
    }

    #[test]
    fn unroll_flattens_counted_loops() {
        let mut m = module(
            "int g; int main(void) { for (int i = 0; i < 3; i = i + 1) { g = g + 1; } return g; }",
        );
        let did = unroll(&mut m, 8);
        assert!(did, "canonical loop unrolled");
        let f = m.func("main").unwrap();
        let loops = blocks_in_loops(f);
        assert!(loops.iter().all(|&b| !b), "no loops remain");
    }

    #[test]
    fn unroll_respects_threshold() {
        let mut m = module(
            "int g; int main(void) { for (int i = 0; i < 30; i = i + 1) { g = g + 1; } return g; }",
        );
        assert!(!unroll(&mut m, 8));
    }

    #[test]
    fn inline_single_block_callee() {
        let mut m = module(
            "int add1(int a) { return a + 1; }
             int main(void) { return add1(41); }",
        );
        assert!(inline(&mut m, 30));
        let f = m.func("main").unwrap();
        assert_eq!(count_ops(&m, |o| matches!(o, Op::Call { .. })), 0);
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| i.meta.inlined));
    }

    #[test]
    fn simplify_cfg_folds_constant_branches() {
        let mut m = module(
            "int g; int main(void) { if (1) { g = 1; } else { g = 2; } return g; }",
        );
        // The branch condition is already Imm(1) after frontend folding.
        simplify_cfg(&mut m);
        let f = m.func("main").unwrap();
        let brs = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Some(Term::Br { .. })))
            .count();
        assert_eq!(brs, 0);
    }

    #[test]
    fn blocks_in_loops_detects_cycles() {
        let m = module(
            "int g; int main(void) { for (int i = 0; i < 3; i = i + 1) { g += i; } return g; }",
        );
        let f = m.func("main").unwrap();
        let flags = blocks_in_loops(f);
        assert!(flags.iter().any(|&x| x), "loop blocks detected");
        assert!(!flags[0], "entry not in a loop");
    }
}
