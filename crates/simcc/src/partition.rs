//! Partitioned sanitization: per-cell instrumentation policies.
//!
//! PartiSan-style partial sanitization trades overhead for detection by
//! instrumenting only a subset of the would-be check sites. The subset is a
//! **pure function** of `(salt, function name, site loc)` — every worker and
//! every replay derives the same subset with zero shared state, which is what
//! keeps partial-policy campaigns inside the repo's determinism contract.
//!
//! The campaign seed is folded into the salt once, up front, via
//! [`SanPolicy::seeded`]; after that the policy value itself carries
//! everything the predicate needs.

/// How much sanitizer instrumentation a compile cell receives.
///
/// `Full` is the default and must stay **bit-identical** to the
/// pre-partition pipeline: the sanitize pass takes no policy branch that
/// could perturb output, and the skipped-site set stays empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SanPolicy {
    /// Instrument every check site (the bit-identical default).
    #[default]
    Full,
    /// Instrument nothing: the sanitizer runtime is linked but every check
    /// site is skipped (the overhead floor of the trade-off curve).
    None,
    /// Instrument a pseudo-random subset of sites.
    ///
    /// `ratio_pm` is the keep ratio in per-mille (0..=1000) — an integer so
    /// the policy stays `Eq + Hash` and wire round-trips are exact.
    /// `ratio_pm == 1000` keeps every site and compiles byte-identically to
    /// [`SanPolicy::Full`].
    Partial {
        /// Keep ratio in per-mille (500 = instrument ~half the sites).
        ratio_pm: u16,
        /// Subset selector; two policies with the same ratio but different
        /// salts instrument different subsets.
        salt: u64,
    },
}

/// FNV-1a, duplicated here so the subset predicate has no dependency on the
/// store crate (simcc sits below it in the workspace graph).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SanPolicy {
    /// Does the policy instrument the check site at `loc` in function
    /// `func`? Pure: depends only on the policy value and the site identity.
    pub fn keeps(&self, func: &str, loc: ubfuzz_minic::Loc) -> bool {
        match *self {
            SanPolicy::Full => true,
            SanPolicy::None => false,
            SanPolicy::Partial { ratio_pm, salt } => {
                if ratio_pm >= 1000 {
                    return true;
                }
                if ratio_pm == 0 {
                    return false;
                }
                let mut h = fnv1a_u64(fnv1a(func.as_bytes()), salt);
                h = fnv1a_u64(h, loc.line as u64);
                h = fnv1a_u64(h, loc.col as u64);
                (h % 1000) < ratio_pm as u64
            }
        }
    }

    /// Folds the campaign seed into the subset selector so distinct
    /// campaigns sample distinct subsets by default. `Full`/`None` are
    /// unaffected — they have no subset to select.
    pub fn seeded(self, campaign_seed: u64) -> SanPolicy {
        match self {
            SanPolicy::Partial { ratio_pm, salt } => SanPolicy::Partial {
                ratio_pm,
                salt: fnv1a_u64(salt ^ 0x5eed_5a17_ba5e_u64, campaign_seed),
            },
            other => other,
        }
    }

    /// The site-subset fingerprint that slots into the sanitize-cache key.
    ///
    /// `Full` is 0 so existing keys are unchanged; distinct non-full
    /// policies get distinct fingerprints so their cache entries never
    /// alias.
    pub fn subset_fingerprint(&self) -> u64 {
        match *self {
            SanPolicy::Full => 0,
            SanPolicy::None => fnv1a(b"san-policy:none"),
            SanPolicy::Partial { ratio_pm, salt } => {
                fnv1a_u64(fnv1a_u64(fnv1a(b"san-policy:partial"), ratio_pm as u64), salt)
            }
        }
    }

    /// True when the policy is the bit-identical default.
    pub fn is_full(&self) -> bool {
        matches!(self, SanPolicy::Full)
    }

    /// Parses the wire/CLI spelling: `full`, `none`, `partial`,
    /// `partial:<ratio>`, or `partial:<ratio>:<salt>`, where `<ratio>` is
    /// either a float in `[0, 1]` (`0.5`) or an integer per-mille
    /// (`500`). Round-trips with [`std::fmt::Display`].
    pub fn parse(s: &str) -> Option<SanPolicy> {
        match s {
            "full" => return Some(SanPolicy::Full),
            "none" => return Some(SanPolicy::None),
            "partial" => return Some(SanPolicy::Partial { ratio_pm: 500, salt: 0 }),
            _ => {}
        }
        let rest = s.strip_prefix("partial:")?;
        let (ratio_str, salt) = match rest.split_once(':') {
            Some((r, s)) => (r, s.parse::<u64>().ok()?),
            None => (rest, 0),
        };
        let ratio_pm = if ratio_str.contains('.') {
            let f = ratio_str.parse::<f64>().ok()?;
            if !(0.0..=1.0).contains(&f) {
                return None;
            }
            (f * 1000.0).round() as u16
        } else {
            let pm = ratio_str.parse::<u16>().ok()?;
            if pm > 1000 {
                return None;
            }
            pm
        };
        Some(SanPolicy::Partial { ratio_pm, salt })
    }
}

impl std::fmt::Display for SanPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SanPolicy::Full => f.write_str("full"),
            SanPolicy::None => f.write_str("none"),
            SanPolicy::Partial { ratio_pm, salt } => write!(f, "partial:{ratio_pm}:{salt}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::Loc;

    #[test]
    fn parse_round_trips_display() {
        for p in [
            SanPolicy::Full,
            SanPolicy::None,
            SanPolicy::Partial { ratio_pm: 500, salt: 0 },
            SanPolicy::Partial { ratio_pm: 250, salt: 9_000_000_123 },
            SanPolicy::Partial { ratio_pm: 1000, salt: 7 },
        ] {
            assert_eq!(SanPolicy::parse(&p.to_string()), Some(p));
        }
    }

    #[test]
    fn parse_accepts_float_and_per_mille_ratios() {
        assert_eq!(
            SanPolicy::parse("partial:0.5"),
            Some(SanPolicy::Partial { ratio_pm: 500, salt: 0 })
        );
        assert_eq!(
            SanPolicy::parse("partial:250:9"),
            Some(SanPolicy::Partial { ratio_pm: 250, salt: 9 })
        );
        assert_eq!(
            SanPolicy::parse("partial:1.0:3"),
            Some(SanPolicy::Partial { ratio_pm: 1000, salt: 3 })
        );
        assert_eq!(SanPolicy::parse("partial"), Some(SanPolicy::Partial { ratio_pm: 500, salt: 0 }));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["banana", "partial:1.5", "partial:1001", "partial:0.5:x", "Full", ""] {
            assert_eq!(SanPolicy::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn keeps_is_pure_and_ratio_extremes_are_exact() {
        let loc = Loc { line: 10, col: 3 };
        assert!(SanPolicy::Full.keeps("f", loc));
        assert!(!SanPolicy::None.keeps("f", loc));
        assert!(SanPolicy::Partial { ratio_pm: 1000, salt: 99 }.keeps("f", loc));
        assert!(!SanPolicy::Partial { ratio_pm: 0, salt: 99 }.keeps("f", loc));
        let p = SanPolicy::Partial { ratio_pm: 500, salt: 42 };
        for line in 0..50u32 {
            let l = Loc { line, col: 1 };
            assert_eq!(p.keeps("main", l), p.keeps("main", l));
        }
    }

    #[test]
    fn partial_subsets_depend_on_salt() {
        let a = SanPolicy::Partial { ratio_pm: 500, salt: 1 };
        let b = SanPolicy::Partial { ratio_pm: 500, salt: 2 };
        let mut differs = false;
        for line in 0..200u32 {
            let l = Loc { line, col: 0 };
            if a.keeps("main", l) != b.keeps("main", l) {
                differs = true;
                break;
            }
        }
        assert!(differs, "different salts must select different subsets");
    }

    #[test]
    fn partial_ratio_lands_near_target() {
        let p = SanPolicy::Partial { ratio_pm: 500, salt: 7 };
        let kept = (0..1000u32)
            .filter(|&line| p.keeps("main", Loc { line, col: 1 }))
            .count();
        assert!((350..=650).contains(&kept), "kept {kept}/1000 at ratio 0.5");
    }

    #[test]
    fn subset_fingerprints_never_alias() {
        let fps = [
            SanPolicy::Full.subset_fingerprint(),
            SanPolicy::None.subset_fingerprint(),
            SanPolicy::Partial { ratio_pm: 500, salt: 0 }.subset_fingerprint(),
            SanPolicy::Partial { ratio_pm: 500, salt: 1 }.subset_fingerprint(),
            SanPolicy::Partial { ratio_pm: 250, salt: 0 }.subset_fingerprint(),
        ];
        assert_eq!(fps[0], 0, "Full keeps the pre-partition key shape");
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "policies {i} and {j} alias");
            }
        }
    }

    #[test]
    fn seeded_changes_partial_subset_only() {
        assert_eq!(SanPolicy::Full.seeded(9), SanPolicy::Full);
        assert_eq!(SanPolicy::None.seeded(9), SanPolicy::None);
        let p = SanPolicy::Partial { ratio_pm: 500, salt: 3 };
        let s1 = p.seeded(1);
        let s2 = p.seeded(2);
        assert_ne!(s1, s2);
        assert_eq!(s1, p.seeded(1), "seeding is deterministic");
    }
}
