//! The compiler's intermediate representation.
//!
//! A register machine over a flat address space: unbounded virtual registers
//! (single static assignment per register), locals as explicitly addressed
//! stack *slots*, and side-effecting instructions for memory, calls, and —
//! crucially — sanitizer checks. Sanitizer checks are ordinary instructions
//! inserted mid-pipeline (paper Fig. 2), so optimization passes interact with
//! them exactly the way real pass pipelines do.
//!
//! Every instruction carries the source [`Loc`] it was lowered from; this is
//! the `-g` debug metadata that crash-site mapping (Algorithm 2) depends on.

use ubfuzz_minic::types::IntType;
use ubfuzz_minic::Loc;

/// A virtual register.
pub type RegId = u32;

/// A basic-block index within a function.
pub type BlockId = usize;

/// An operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Register reference.
    Reg(RegId),
    /// 64-bit immediate.
    Imm(i64),
}

impl Operand {
    /// The immediate payload, if constant.
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            Operand::Reg(_) => None,
        }
    }

    /// The register, if not constant.
    pub fn as_reg(self) -> Option<RegId> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

/// Integer binary operations (machine semantics: wrapping; shifts mask the
/// amount like x86; division traps are the VM's job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    And,
    Or,
    Xor,
    /// Comparisons produce 0/1.
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl BinKind {
    /// True for `+ - * / %` — the UBSan signed-overflow surface.
    pub fn is_arith(self) -> bool {
        matches!(self, BinKind::Add | BinKind::Sub | BinKind::Mul | BinKind::Div | BinKind::Rem)
    }

    /// True for comparison operators.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge | BinKind::Eq | BinKind::Ne
        )
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnKind {
    /// Two's-complement negation (wrapping).
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical not (`== 0`).
    LogicalNot,
}

/// Which use an MSan check protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsanUse {
    /// Branch condition.
    Branch,
    /// Division operand.
    Divisor,
    /// Value passed to output.
    Output,
}

/// Per-instruction metadata that sanitizer passes and defect triggers read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Meta {
    /// Subject to UBSan arithmetic instrumentation (signed arithmetic from
    /// source, not compiler-synthesized address math).
    pub sanitize: bool,
    /// The value was widened from a boolean-producing expression through a
    /// narrowing cast (paper Fig. 12b raw material).
    pub bool_widened: bool,
    /// Part of a read-modify-write lowering of `++lvalue` (Fig. 12e).
    pub rmw: bool,
    /// Shift whose amount operand was a `char`-typed expression (defect
    /// trigger raw material).
    pub char_shift_amount: bool,
    /// Instruction was inlined from a callee.
    pub inlined: bool,
}

/// One IR instruction: optional destination register, operation, source
/// location, metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Destination register, for value-producing operations.
    pub dst: Option<RegId>,
    /// The operation.
    pub op: Op,
    /// Source location (debug metadata).
    pub loc: Loc,
    /// Sanitizer-relevant metadata.
    pub meta: Meta,
}

impl Instr {
    /// A value-producing instruction.
    pub fn new(dst: RegId, op: Op, loc: Loc) -> Instr {
        Instr { dst: Some(dst), op, loc, meta: Meta::default() }
    }

    /// A pure side-effect instruction.
    pub fn effect(op: Op, loc: Loc) -> Instr {
        Instr { dst: None, op, loc, meta: Meta::default() }
    }
}

/// Operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Constant.
    Const(i64),
    /// Binary operation in `ty` (wrapping machine semantics).
    Bin {
        /// Operator.
        op: BinKind,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Computation type.
        ty: IntType,
    },
    /// Unary operation in `ty`.
    Un {
        /// Operator.
        op: UnKind,
        /// Operand.
        a: Operand,
        /// Computation type.
        ty: IntType,
    },
    /// Integer conversion.
    Cast {
        /// Operand.
        a: Operand,
        /// Target type (wrap/extend).
        to: IntType,
    },
    /// Address of stack slot.
    AddrLocal(usize),
    /// Address of global.
    AddrGlobal(usize),
    /// `base + offset * scale` address arithmetic.
    PtrAdd {
        /// Base address.
        base: Operand,
        /// Element index.
        offset: Operand,
        /// Element size in bytes.
        scale: i64,
    },
    /// Scalar load of `size` bytes (1/2/4/8), sign-extended if `signed`.
    Load {
        /// Address operand.
        addr: Operand,
        /// Access size in bytes.
        size: u8,
        /// Sign-extend on load.
        signed: bool,
    },
    /// Scalar store of the low `size` bytes of `val`.
    Store {
        /// Address operand.
        addr: Operand,
        /// Value to store.
        val: Operand,
        /// Access size in bytes.
        size: u8,
    },
    /// Aggregate copy (struct assignment).
    MemCopy {
        /// Destination address.
        dst: Operand,
        /// Source address.
        src: Operand,
        /// Bytes to copy.
        len: u32,
    },
    /// Call to a user function; `dst` receives the return value.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Heap allocation.
    Malloc {
        /// Size in bytes.
        size: Operand,
    },
    /// Heap free.
    Free {
        /// Block address.
        addr: Operand,
    },
    /// Output a value (the `print_value` builtin).
    Print {
        /// Value to print.
        val: Operand,
    },
    /// Scope-entry marker for a slot (variable comes alive here).
    LifetimeStart(usize),
    /// Scope-exit marker for a slot.
    LifetimeEnd(usize),

    // ---- sanitizer instructions (inserted by sanitizer passes) ----
    /// ASan shadow check on `[addr, addr+size)`.
    AsanCheck {
        /// Address operand.
        addr: Operand,
        /// Access size in bytes.
        size: u8,
        /// True for writes.
        write: bool,
    },
    /// ASan use-after-scope poisoning at scope exit (replaces
    /// [`Op::LifetimeEnd`] when ASan instruments the slot).
    AsanPoisonScope(usize),
    /// ASan unpoisoning at scope entry.
    AsanUnpoisonScope(usize),
    /// UBSan signed-overflow check: recompute `a op b` widely, report if the
    /// result exceeds `ty`.
    UbsanCheckArith {
        /// Operator.
        op: BinKind,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// The checked (promoted) type.
        ty: IntType,
    },
    /// UBSan negation-overflow check (`-MIN`).
    UbsanCheckNeg {
        /// Operand.
        a: Operand,
        /// The checked type.
        ty: IntType,
    },
    /// UBSan shift-exponent check: report unless `0 <= amount < bits`.
    UbsanCheckShift {
        /// Shift amount operand.
        amount: Operand,
        /// Bit width of the shifted type.
        bits: u8,
    },
    /// UBSan division check: divisor zero (and `MIN / -1`).
    UbsanCheckDiv {
        /// Dividend (for the `MIN / -1` case).
        a: Operand,
        /// Divisor operand.
        divisor: Operand,
        /// The checked type.
        ty: IntType,
    },
    /// UBSan null-pointer check.
    UbsanCheckNull {
        /// Address about to be dereferenced.
        addr: Operand,
    },
    /// UBSan array-bounds check: report unless `0 <= idx < bound`.
    UbsanCheckBound {
        /// Index operand.
        idx: Operand,
        /// Exclusive bound.
        bound: u64,
    },
    /// MSan use check: report if the operand's shadow is poisoned.
    MsanCheck {
        /// Checked value.
        val: Operand,
        /// Context of the use.
        what: MsanUse,
    },
}

impl Op {
    /// True if the instruction has observable effects and must not be
    /// removed by dead-code elimination (checks, stores, calls, output,
    /// lifetime and allocation events).
    pub fn has_side_effect(&self) -> bool {
        !matches!(
            self,
            Op::Const(_)
                | Op::Bin { .. }
                | Op::Un { .. }
                | Op::Cast { .. }
                | Op::AddrLocal(_)
                | Op::AddrGlobal(_)
                | Op::PtrAdd { .. }
                | Op::Load { .. }
        )
    }

    /// True for sanitizer check/poison instructions.
    pub fn is_sanitizer_op(&self) -> bool {
        matches!(
            self,
            Op::AsanCheck { .. }
                | Op::AsanPoisonScope(_)
                | Op::AsanUnpoisonScope(_)
                | Op::UbsanCheckArith { .. }
                | Op::UbsanCheckNeg { .. }
                | Op::UbsanCheckShift { .. }
                | Op::UbsanCheckDiv { .. }
                | Op::UbsanCheckNull { .. }
                | Op::UbsanCheckBound { .. }
                | Op::MsanCheck { .. }
        )
    }

    /// Operands read by this instruction.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Op::Const(_)
            | Op::AddrLocal(_)
            | Op::AddrGlobal(_)
            | Op::LifetimeStart(_)
            | Op::LifetimeEnd(_)
            | Op::AsanPoisonScope(_)
            | Op::AsanUnpoisonScope(_) => vec![],
            Op::Bin { a, b, .. } => vec![*a, *b],
            Op::Un { a, .. } | Op::Cast { a, .. } => vec![*a],
            Op::PtrAdd { base, offset, .. } => vec![*base, *offset],
            Op::Load { addr, .. } => vec![*addr],
            Op::Store { addr, val, .. } => vec![*addr, *val],
            Op::MemCopy { dst, src, .. } => vec![*dst, *src],
            Op::Call { args, .. } => args.clone(),
            Op::Malloc { size } => vec![*size],
            Op::Free { addr } => vec![*addr],
            Op::Print { val } => vec![*val],
            Op::AsanCheck { addr, .. } => vec![*addr],
            Op::UbsanCheckArith { a, b, .. } => vec![*a, *b],
            Op::UbsanCheckNeg { a, .. } => vec![*a],
            Op::UbsanCheckShift { amount, .. } => vec![*amount],
            Op::UbsanCheckDiv { a, divisor, .. } => vec![*a, *divisor],
            Op::UbsanCheckNull { addr } => vec![*addr],
            Op::UbsanCheckBound { idx, .. } => vec![*idx],
            Op::MsanCheck { val, .. } => vec![*val],
        }
    }

    /// Rewrites every operand with `f` (used by copy propagation, inlining
    /// and unrolling).
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Op::Const(_)
            | Op::AddrLocal(_)
            | Op::AddrGlobal(_)
            | Op::LifetimeStart(_)
            | Op::LifetimeEnd(_)
            | Op::AsanPoisonScope(_)
            | Op::AsanUnpoisonScope(_) => {}
            Op::Bin { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::Un { a, .. } | Op::Cast { a, .. } => *a = f(*a),
            Op::PtrAdd { base, offset, .. } => {
                *base = f(*base);
                *offset = f(*offset);
            }
            Op::Load { addr, .. } => *addr = f(*addr),
            Op::Store { addr, val, .. } => {
                *addr = f(*addr);
                *val = f(*val);
            }
            Op::MemCopy { dst, src, .. } => {
                *dst = f(*dst);
                *src = f(*src);
            }
            Op::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Op::Malloc { size } => *size = f(*size),
            Op::Free { addr } => *addr = f(*addr),
            Op::Print { val } => *val = f(*val),
            Op::AsanCheck { addr, .. } => *addr = f(*addr),
            Op::UbsanCheckArith { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::UbsanCheckNeg { a, .. } => *a = f(*a),
            Op::UbsanCheckShift { amount, .. } => *amount = f(*amount),
            Op::UbsanCheckDiv { a, divisor, .. } => {
                *a = f(*a);
                *divisor = f(*divisor);
            }
            Op::UbsanCheckNull { addr } => *addr = f(*addr),
            Op::UbsanCheckBound { idx, .. } => *idx = f(*idx),
            Op::MsanCheck { val, .. } => *val = f(*val),
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch on non-zero.
    Br {
        /// Condition operand.
        cond: Operand,
        /// Target when non-zero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
}

impl Term {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Jmp(t) => vec![*t],
            Term::Br { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Term::Ret(_) => vec![],
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// Terminator; `None` only transiently during construction.
    pub term: Option<Term>,
}

/// A stack slot (local variable or parameter home).
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    /// Variable name (for diagnostics).
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Lexical scope depth (1 = parameters/top level of body).
    pub scope_depth: u32,
    /// True when the slot's address escapes (stored, passed, or used beyond
    /// direct load/store) — computed by analyses, conservative default true.
    pub address_taken: bool,
}

/// A function.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Name; `main` is the entry point.
    pub name: String,
    /// Parameter registers (values on entry).
    pub params: Vec<RegId>,
    /// Stack slots.
    pub slots: Vec<Slot>,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
    /// Next free register id.
    pub next_reg: RegId,
}

impl Func {
    /// Mints a fresh register.
    pub fn fresh_reg(&mut self) -> RegId {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Builds the register → defining-instruction index, assuming the
    /// single-assignment invariant (block, instr index).
    pub fn def_map(&self) -> std::collections::HashMap<RegId, (BlockId, usize)> {
        let mut m = std::collections::HashMap::new();
        for (bi, b) in self.blocks.iter().enumerate() {
            for (ii, ins) in b.instrs.iter().enumerate() {
                if let Some(d) = ins.dst {
                    m.insert(d, (bi, ii));
                }
            }
        }
        m
    }
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Initial bytes (zero-filled when shorter than `size`).
    pub init: Vec<u8>,
    /// Pointer relocations: at byte `offset`, the address of global `gid`
    /// plus `addend`.
    pub relocs: Vec<(u32, usize, i64)>,
    /// Element size if this is an array (for red-zone layout decisions).
    pub elem_size: u32,
    /// Number of elements if an array (1 for scalars).
    pub elem_count: u32,
}

/// MSan shadow-propagation policy; the defective LLVM handling of
/// `x - constant` (Fig. 12f) is a policy flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MsanPolicy {
    /// Treat `x - imm` as fully defined even when `x` is poisoned.
    pub sub_const_fully_defined: bool,
}

/// Which sanitizer a module was instrumented with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sanitizer {
    /// AddressSanitizer.
    Asan,
    /// UndefinedBehaviorSanitizer.
    Ubsan,
    /// MemorySanitizer.
    Msan,
}

impl Sanitizer {
    /// All sanitizers.
    pub const ALL: [Sanitizer; 3] = [Sanitizer::Asan, Sanitizer::Ubsan, Sanitizer::Msan];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Sanitizer::Asan => "ASan",
            Sanitizer::Ubsan => "UBSan",
            Sanitizer::Msan => "MSan",
        }
    }
}

impl std::fmt::Display for Sanitizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sanitizer-related module metadata produced by the passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SanMeta {
    /// Which sanitizer instrumented this module, if any.
    pub sanitizer: Option<Sanitizer>,
    /// Globals whose trailing red-zone is (defectively) left partially
    /// unpoisoned: `(gid, unpoisoned prefix bytes)`.
    pub global_redzone_gaps: Vec<(usize, u32)>,
    /// MSan propagation policy.
    pub msan_policy: MsanPolicy,
    /// Ground-truth record of defect applications: `(defect id, site loc)`.
    /// Written by the vendor's passes; used by evaluation/attribution, never
    /// by the test oracle itself.
    pub applied_defects: Vec<(&'static str, Loc)>,
    /// Sites transformed by *legitimate* optimizations that remove UB while
    /// keeping the crash site executable (the Fig. 8 invalid-report shape).
    pub legit_transforms: Vec<Loc>,
    /// Check sites the partial-sanitization policy skipped (empty under
    /// `SanPolicy::Full`). The oracle reads this to classify a missing
    /// report at one of these sites as an *expected miss*, not a true FN.
    pub skipped_sites: Vec<Loc>,
}

impl SanMeta {
    /// Was the check site at `loc` left uninstrumented by the policy?
    pub fn site_skipped(&self, loc: Loc) -> bool {
        self.skipped_sites.contains(&loc)
    }
}

/// A compiled module ("binary" plus debug metadata).
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Global definitions.
    pub globals: Vec<GlobalDef>,
    /// Functions.
    pub funcs: Vec<Func>,
    /// Sanitizer metadata.
    pub san: SanMeta,
    /// Compiler identity and optimization level this module was built with.
    pub build: Option<crate::target::BuildInfo>,
}

impl Module {
    /// The function named `name`.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Total instruction count (for size/benchmark reporting).
    pub fn instr_count(&self) -> usize {
        self.funcs.iter().map(|f| f.blocks.iter().map(|b| b.instrs.len()).sum::<usize>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Imm(5).as_imm(), Some(5));
        assert_eq!(Operand::Reg(3).as_reg(), Some(3));
        assert_eq!(Operand::Imm(5).as_reg(), None);
    }

    #[test]
    fn side_effects_classified() {
        assert!(!Op::Const(1).has_side_effect());
        assert!(!Op::Load { addr: Operand::Reg(0), size: 4, signed: true }.has_side_effect());
        assert!(Op::Store { addr: Operand::Reg(0), val: Operand::Imm(1), size: 4 }
            .has_side_effect());
        assert!(Op::AsanCheck { addr: Operand::Reg(0), size: 4, write: false }.has_side_effect());
        assert!(Op::Print { val: Operand::Imm(1) }.has_side_effect());
    }

    #[test]
    fn map_operands_rewrites() {
        let mut op = Op::Bin {
            op: BinKind::Add,
            a: Operand::Reg(1),
            b: Operand::Reg(2),
            ty: IntType::INT,
        };
        op.map_operands(|o| match o {
            Operand::Reg(1) => Operand::Imm(42),
            other => other,
        });
        assert_eq!(op.operands(), vec![Operand::Imm(42), Operand::Reg(2)]);
    }

    #[test]
    fn def_map_finds_single_defs() {
        let mut f = Func {
            name: "t".into(),
            params: vec![],
            slots: vec![],
            blocks: vec![Block::default()],
            next_reg: 0,
        };
        let r = f.fresh_reg();
        f.blocks[0].instrs.push(Instr::new(r, Op::Const(7), Loc::UNKNOWN));
        f.blocks[0].term = Some(Term::Ret(None));
        let dm = f.def_map();
        assert_eq!(dm[&r], (0, 0));
    }
}
