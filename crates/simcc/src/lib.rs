//! `ubfuzz-simcc` — the compiler substrate: two optimizing "vendor"
//! toolchains with sanitizer passes and an injected sanitizer-defect corpus.
//!
//! The UBfuzz paper tests GCC and LLVM sanitizers. This crate provides the
//! equivalent *system under test* for the reproduction:
//!
//! * an [`ir`] register machine with explicit memory, lifetime markers,
//!   sanitizer-check instructions and per-instruction `(line, offset)` debug
//!   metadata;
//! * a [`lower`] frontend from [`ubfuzz_minic`] ASTs (with `-O0`-style
//!   constant folding);
//! * optimization [`passes`] — constant folding, DCE, store forwarding,
//!   dead-store/dead-slot elimination, CFG simplification, loop unrolling,
//!   inlining — that run *before* the sanitizer pass and can therefore
//!   delete UB the sanitizer never gets to see (paper Fig. 2/3);
//! * sanitizer passes ([`san`]): ASan (shadow/red-zone checks, scope
//!   poisoning), UBSan (overflow/shift/div/null/bounds checks) and MSan
//!   (shadow-propagation policy + use checks), with the paper's Table 2
//!   support matrix;
//! * the [`defects`] registry — 30 injected sanitizer bugs matching the
//!   paper's Table 3/Table 6/Fig. 10/Fig. 11 distributions, plus the
//!   legitimate GCC `-O3` transformation behind the one invalid report;
//! * two vendor [`pipeline`]s ("GCC" 5–14, "LLVM" 5–18 at `-O0/-O1/-Os/
//!   -O2/-O3`) whose pass mixes differ by vendor and version;
//! * [`cov`] — self-coverage of the sanitizer implementation, the Table 5
//!   measurement substrate.
//!
//! # Example
//!
//! ```
//! use ubfuzz_simcc::defects::DefectRegistry;
//! use ubfuzz_simcc::ir::Sanitizer;
//! use ubfuzz_simcc::pipeline::{compile, CompileConfig};
//! use ubfuzz_simcc::target::{OptLevel, Vendor};
//!
//! let program = ubfuzz_minic::parse(
//!     "int g[4]; int main(void) { g[1] = 2; return g[1]; }",
//! ).unwrap();
//! let registry = DefectRegistry::full();
//! let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &registry);
//! let module = compile(&program, &cfg).unwrap();
//! assert!(module.instr_count() > 0);
//! ```

pub mod cov;
pub mod defects;
pub mod ir;
pub mod lower;
pub mod partition;
pub mod passes;
pub mod pipeline;
pub mod san;
pub mod session;
pub mod target;

pub use cov::{Collector, CovDelta, CovPoint};
pub use defects::{BugStatus, Defect, DefectCategory, DefectRegistry, DEFECTS};
pub use ir::{Module, Sanitizer};
pub use lower::CompileError;
pub use partition::SanPolicy;
pub use pipeline::{compile, CompileConfig};
pub use san::{sanitizers_for, supports};
pub use session::{CompileSession, ProgramFingerprint, SessionStats};
pub use target::{BuildInfo, CompilerId, OptLevel, Vendor};
