//! The injected sanitizer-defect corpus — the system under test.
//!
//! The paper reports 31 bugs (Table 3): 30 real sanitizer defects plus one
//! invalid report caused by a legitimate GCC `-O3` loop transformation
//! (Fig. 8). This registry holds the 30 real defects with the paper's exact
//! distribution across vendors, sanitizers, root-cause categories (Table 6),
//! affected optimization levels (Fig. 11), introduction versions (Fig. 10)
//! and fix status (Table 3). The invalid report is not a defect: it emerges
//! from the `gcc -O3` scope-extension transform in the ASan pass.
//!
//! Triggers are structural IR patterns. The sanitizer passes consult
//! [`DefectRegistry::active`] at every would-be check site; a match
//! suppresses or corrupts the check and records the application in the
//! module's [`crate::ir::SanMeta::applied_defects`] — ground truth used for
//! *attribution* (the analogue of the paper's manual root-cause analysis),
//! never by the test oracle.

use crate::ir::Sanitizer;
use crate::target::{OptLevel, Vendor};
use ubfuzz_minic::UbKind;

/// Root-cause categories (paper Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DefectCategory {
    /// The sanitizer forgets to insert a check.
    NoSanitizerCheck,
    /// A sanitizer-owned optimization removes a valid check.
    IncorrectSanitizerOpt,
    /// Red-zone layout leaves overflow bytes addressable.
    WrongRedZone,
    /// The inserted check tests the wrong thing.
    IncorrectSanitizerCheck,
    /// Expression folding/shortening drops instrumentation.
    IncorrectExprFolding,
    /// Shadow propagation mishandles an operation (MSan).
    IncorrectOperationHandling,
    /// Debug line info on the report is wrong (wrong-report bug).
    WrongLineInfo,
}

impl DefectCategory {
    /// Table 6 row label.
    pub fn name(self) -> &'static str {
        match self {
            DefectCategory::NoSanitizerCheck => "No Sanitizer Check",
            DefectCategory::IncorrectSanitizerOpt => "Incorrect Sanitizer Optimization",
            DefectCategory::WrongRedZone => "Wrong Red-Zone Buffer",
            DefectCategory::IncorrectSanitizerCheck => "Incorrect Sanitizer Check",
            DefectCategory::IncorrectExprFolding => "Incorrect Expression Folding/Shorten",
            DefectCategory::IncorrectOperationHandling => "Incorrect Operation Handling",
            DefectCategory::WrongLineInfo => "Wrong Line Information",
        }
    }

    /// All categories in Table 6 order.
    pub const ALL: [DefectCategory; 7] = [
        DefectCategory::NoSanitizerCheck,
        DefectCategory::IncorrectSanitizerOpt,
        DefectCategory::WrongRedZone,
        DefectCategory::IncorrectSanitizerCheck,
        DefectCategory::IncorrectExprFolding,
        DefectCategory::IncorrectOperationHandling,
        DefectCategory::WrongLineInfo,
    ];
}

/// Report status in the upstream tracker (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugStatus {
    /// Reported, no developer diagnosis yet.
    Reported,
    /// Diagnosed and confirmed by the developers.
    Confirmed,
    /// Confirmed and fixed (in the development branch).
    Fixed,
}

/// Structural trigger patterns, matched by the sanitizer passes at check
/// sites. Names describe the *site shape*, not the mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Access whose address was loaded from a global pointer variable.
    AddrFromGlobalPtrLoad,
    /// Access whose address was loaded from a slot that ever held a
    /// `malloc` result.
    AddrFromMallocSlot,
    /// Scope poisoning of an escaping slot inside a loop (non-Fig. 8 shape).
    ScopePoisonInLoop,
    /// Access via struct-member offset from a loaded pointer (`p->f`).
    MemberOffsetFromLoadedPtr,
    /// Access at a constant offset into a global (index was const-folded).
    ConstOffsetGlobal,
    /// Global `int` array with an odd element count (red-zone layout).
    OddGlobalArray,
    /// Struct copies: only the first 8 bytes get checked.
    StructCopyTail,
    /// RMW store: report carries the wrong line (wrong-report bug).
    RmwWrongLine,
    /// Arithmetic whose result feeds a store to a global.
    ArithFeedsGlobalStore,
    /// Shift whose amount expression involves a `char` value.
    CharShiftAmount,
    /// Divisor chain contains a boolean widened through a narrow cast.
    BoolWidenedDivisor,
    /// Subtraction with a cast in an operand chain (folding/shorten shape).
    SubWithCastOperand,
    /// Multiplication with a narrow (8/16-bit) loaded operand.
    MulWithNarrowOperand,
    /// Array index that is a sum of two loads (aux-variable shape).
    IndexIsSumOfLoads,
    /// Division check emitted with an off-by-one source line.
    DivWrongLine,
    /// Access via a callee pointer parameter plus a constant offset.
    ParamPtrConstOffset,
    /// Scope poisoning of an escaping slot inside a loop (LLVM flavour).
    ScopePoisonInLoopLlvm,
    /// Second check of the same address register within a block.
    DuplicateAddrCheck,
    /// Odd global arrays, LLVM red-zone layout flavour.
    OddGlobalArrayLlvm,
    /// RMW access (ASan flavour: check skipped for `++(*p)` stores).
    RmwAccess,
    /// One-byte accesses (shadow granularity).
    ByteAccess,
    /// RMW dereference: the null check is omitted (`++(*p)`, Fig. 12e).
    RmwNullCheck,
    /// Check on an instruction inlined from a callee.
    InlinedArith,
    /// Shift on a 64-bit value (amount check masks the exponent first).
    LongShift,
    /// Remainder (`%`) divisor unchecked.
    RemUnchecked,
    /// Array-bounds check emitted with an off-by-one bound.
    BoundOffByOne,
    /// Null check placed after the member-offset addition (`p->f`).
    NullCheckAfterOffset,
    /// Shift whose amount chain contains a cast (folded-pair shape).
    ShiftAmountCast,
    /// Unary negation overflow never checked.
    NegationUnchecked,
    /// MSan treats `x - constant` as fully defined (Fig. 12f).
    MsanSubConst,
}

/// One injected sanitizer defect.
#[derive(Debug, Clone)]
pub struct Defect {
    /// Stable identifier, e.g. `"gcc-asan-d01"`.
    pub id: &'static str,
    /// Affected vendor.
    pub vendor: Vendor,
    /// Affected sanitizer.
    pub sanitizer: Sanitizer,
    /// Root-cause category (Table 6).
    pub category: DefectCategory,
    /// UB kind whose detection the defect breaks (Fig. 7).
    pub ub_kind: UbKind,
    /// First stable version affected (Fig. 10).
    pub introduced: u32,
    /// Optimization levels at which the defect manifests (Fig. 11).
    pub opt_levels: &'static [OptLevel],
    /// Tracker status (Table 3). Fixed bugs are fixed on the development
    /// branch only; every released version remains affected.
    pub status: BugStatus,
    /// Structural trigger.
    pub trigger: Trigger,
    /// Paper figure this defect reproduces, if any.
    pub figure: Option<&'static str>,
    /// One-line description.
    pub description: &'static str,
}

use OptLevel::{O0, O1, O2, O3, Os};

const ALL_O: &[OptLevel] = &[O0, O1, Os, O2, O3];
const O2_UP: &[OptLevel] = &[O2, O3];
const O1_UP: &[OptLevel] = &[O1, Os, O2, O3];
const OS_UP: &[OptLevel] = &[Os, O2, O3];

/// The 30-defect corpus (see the module docs for the distribution).
pub const DEFECTS: &[Defect] = &[
    // ---- GCC ASan: 8 real defects (+1 invalid report elsewhere) ----
    Defect { id: "gcc-asan-d01", vendor: Vendor::Gcc, sanitizer: Sanitizer::Asan,
        category: DefectCategory::NoSanitizerCheck, ub_kind: UbKind::BufOverflowPtr,
        introduced: 6, opt_levels: O2_UP, status: BugStatus::Fixed,
        trigger: Trigger::AddrFromGlobalPtrLoad, figure: Some("Fig.1/12a"),
        description: "accesses via pointers loaded from global pointer variables are not instrumented" },
    Defect { id: "gcc-asan-d02", vendor: Vendor::Gcc, sanitizer: Sanitizer::Asan,
        category: DefectCategory::NoSanitizerCheck, ub_kind: UbKind::UseAfterFree,
        introduced: 7, opt_levels: O1_UP, status: BugStatus::Confirmed,
        trigger: Trigger::AddrFromMallocSlot, figure: None,
        description: "accesses through malloc-holding locals lose their checks" },
    Defect { id: "gcc-asan-d03", vendor: Vendor::Gcc, sanitizer: Sanitizer::Asan,
        category: DefectCategory::IncorrectSanitizerOpt, ub_kind: UbKind::UseAfterScope,
        introduced: 8, opt_levels: O2_UP, status: BugStatus::Fixed,
        trigger: Trigger::ScopePoisonInLoop, figure: Some("Fig.12c"),
        description: "scope poisoning removed for loop locals whose address escapes" },
    Defect { id: "gcc-asan-d04", vendor: Vendor::Gcc, sanitizer: Sanitizer::Asan,
        category: DefectCategory::IncorrectSanitizerOpt, ub_kind: UbKind::BufOverflowPtr,
        introduced: 9, opt_levels: O1_UP, status: BugStatus::Confirmed,
        trigger: Trigger::MemberOffsetFromLoadedPtr, figure: None,
        description: "redundant-check elimination drops checks on p->field accesses" },
    Defect { id: "gcc-asan-d05", vendor: Vendor::Gcc, sanitizer: Sanitizer::Asan,
        category: DefectCategory::IncorrectSanitizerOpt, ub_kind: UbKind::BufOverflowArray,
        introduced: 10, opt_levels: OS_UP, status: BugStatus::Fixed,
        trigger: Trigger::ConstOffsetGlobal, figure: None,
        description: "checks on const-folded global-array accesses treated as provably safe" },
    Defect { id: "gcc-asan-d06", vendor: Vendor::Gcc, sanitizer: Sanitizer::Asan,
        category: DefectCategory::WrongRedZone, ub_kind: UbKind::BufOverflowArray,
        introduced: 5, opt_levels: ALL_O, status: BugStatus::Confirmed,
        trigger: Trigger::OddGlobalArray, figure: None,
        description: "odd-length global arrays leave the first trailing bytes unpoisoned" },
    Defect { id: "gcc-asan-d07", vendor: Vendor::Gcc, sanitizer: Sanitizer::Asan,
        category: DefectCategory::IncorrectSanitizerCheck, ub_kind: UbKind::BufOverflowPtr,
        introduced: 11, opt_levels: ALL_O, status: BugStatus::Confirmed,
        trigger: Trigger::StructCopyTail, figure: None,
        description: "struct copies only check their first 8 bytes" },
    Defect { id: "gcc-asan-d08", vendor: Vendor::Gcc, sanitizer: Sanitizer::Asan,
        category: DefectCategory::WrongLineInfo, ub_kind: UbKind::BufOverflowPtr,
        introduced: 12, opt_levels: O2_UP, status: BugStatus::Confirmed,
        trigger: Trigger::RmwWrongLine, figure: None,
        description: "reports for read-modify-write accesses point at the previous line" },
    // ---- GCC UBSan: 7 ----
    Defect { id: "gcc-ubsan-d09", vendor: Vendor::Gcc, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectSanitizerOpt, ub_kind: UbKind::IntOverflow,
        introduced: 9, opt_levels: O2_UP, status: BugStatus::Confirmed,
        trigger: Trigger::ArithFeedsGlobalStore, figure: None,
        description: "overflow checks folded into global-store merging are dropped" },
    Defect { id: "gcc-ubsan-d10", vendor: Vendor::Gcc, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectSanitizerCheck, ub_kind: UbKind::ShiftOverflow,
        introduced: 5, opt_levels: ALL_O, status: BugStatus::Fixed,
        trigger: Trigger::CharShiftAmount, figure: None,
        description: "shift-exponent checks omitted when the amount involves a char" },
    Defect { id: "gcc-ubsan-d11", vendor: Vendor::Gcc, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectExprFolding, ub_kind: UbKind::DivByZero,
        introduced: 5, opt_levels: ALL_O, status: BugStatus::Fixed,
        trigger: Trigger::BoolWidenedDivisor, figure: Some("Fig.12b"),
        description: "divisors widened from boolean expressions lose the zero check" },
    Defect { id: "gcc-ubsan-d12", vendor: Vendor::Gcc, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectExprFolding, ub_kind: UbKind::IntOverflow,
        introduced: 6, opt_levels: O1_UP, status: BugStatus::Fixed,
        trigger: Trigger::SubWithCastOperand, figure: None,
        description: "subtraction checks dropped when an operand chain was shortened by a cast" },
    Defect { id: "gcc-ubsan-d13", vendor: Vendor::Gcc, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectExprFolding, ub_kind: UbKind::IntOverflow,
        introduced: 8, opt_levels: O2_UP, status: BugStatus::Confirmed,
        trigger: Trigger::MulWithNarrowOperand, figure: None,
        description: "multiply checks dropped when an operand was widened from char/short" },
    Defect { id: "gcc-ubsan-d14", vendor: Vendor::Gcc, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectExprFolding, ub_kind: UbKind::BufOverflowArray,
        introduced: 10, opt_levels: OS_UP, status: BugStatus::Confirmed,
        trigger: Trigger::IndexIsSumOfLoads, figure: None,
        description: "array-bound checks dropped when the index is a folded sum of loads" },
    Defect { id: "gcc-ubsan-d15", vendor: Vendor::Gcc, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::WrongLineInfo, ub_kind: UbKind::DivByZero,
        introduced: 7, opt_levels: O1_UP, status: BugStatus::Confirmed,
        trigger: Trigger::DivWrongLine, figure: None,
        description: "division reports carry the operand's line instead of the operator's" },
    // ---- LLVM ASan: 6 ----
    Defect { id: "llvm-asan-d16", vendor: Vendor::Llvm, sanitizer: Sanitizer::Asan,
        category: DefectCategory::NoSanitizerCheck, ub_kind: UbKind::BufOverflowPtr,
        introduced: 8, opt_levels: O1_UP, status: BugStatus::Reported,
        trigger: Trigger::ParamPtrConstOffset, figure: None,
        description: "accesses via parameter pointers plus constant offsets are not instrumented" },
    Defect { id: "llvm-asan-d17", vendor: Vendor::Llvm, sanitizer: Sanitizer::Asan,
        category: DefectCategory::IncorrectSanitizerOpt, ub_kind: UbKind::UseAfterScope,
        introduced: 9, opt_levels: O2_UP, status: BugStatus::Reported,
        trigger: Trigger::ScopePoisonInLoopLlvm, figure: None,
        description: "lifetime markers hoisted out of loops lose scope poisoning" },
    Defect { id: "llvm-asan-d18", vendor: Vendor::Llvm, sanitizer: Sanitizer::Asan,
        category: DefectCategory::IncorrectSanitizerOpt, ub_kind: UbKind::UseAfterFree,
        introduced: 11, opt_levels: O2_UP, status: BugStatus::Reported,
        trigger: Trigger::DuplicateAddrCheck, figure: None,
        description: "checks deduplicated by address register, missing frees in between" },
    Defect { id: "llvm-asan-d19", vendor: Vendor::Llvm, sanitizer: Sanitizer::Asan,
        category: DefectCategory::WrongRedZone, ub_kind: UbKind::BufOverflowArray,
        introduced: 5, opt_levels: ALL_O, status: BugStatus::Confirmed,
        trigger: Trigger::OddGlobalArrayLlvm, figure: Some("Fig.12d"),
        description: "global array padding is marked addressable" },
    Defect { id: "llvm-asan-d20", vendor: Vendor::Llvm, sanitizer: Sanitizer::Asan,
        category: DefectCategory::IncorrectSanitizerCheck, ub_kind: UbKind::BufOverflowPtr,
        introduced: 6, opt_levels: ALL_O, status: BugStatus::Confirmed,
        trigger: Trigger::RmwAccess, figure: None,
        description: "read-modify-write stores check the wrong address" },
    Defect { id: "llvm-asan-d21", vendor: Vendor::Llvm, sanitizer: Sanitizer::Asan,
        category: DefectCategory::IncorrectSanitizerCheck, ub_kind: UbKind::BufOverflowArray,
        introduced: 7, opt_levels: ALL_O, status: BugStatus::Reported,
        trigger: Trigger::ByteAccess, figure: None,
        description: "one-byte accesses fall through the shadow granularity handling" },
    // ---- LLVM UBSan: 8 ----
    Defect { id: "llvm-ubsan-d22", vendor: Vendor::Llvm, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::NoSanitizerCheck, ub_kind: UbKind::NullDeref,
        introduced: 5, opt_levels: ALL_O, status: BugStatus::Confirmed,
        trigger: Trigger::RmwNullCheck, figure: Some("Fig.12e"),
        description: "`++(*p)` never gets a null check" },
    Defect { id: "llvm-ubsan-d23", vendor: Vendor::Llvm, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectSanitizerOpt, ub_kind: UbKind::IntOverflow,
        introduced: 10, opt_levels: O2_UP, status: BugStatus::Reported,
        trigger: Trigger::InlinedArith, figure: None,
        description: "arithmetic inlined from callees loses its overflow checks" },
    Defect { id: "llvm-ubsan-d24", vendor: Vendor::Llvm, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectSanitizerCheck, ub_kind: UbKind::ShiftOverflow,
        introduced: 6, opt_levels: ALL_O, status: BugStatus::Reported,
        trigger: Trigger::LongShift, figure: None,
        description: "64-bit shift checks mask the exponent before testing it" },
    Defect { id: "llvm-ubsan-d25", vendor: Vendor::Llvm, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectSanitizerCheck, ub_kind: UbKind::DivByZero,
        introduced: 8, opt_levels: ALL_O, status: BugStatus::Confirmed,
        trigger: Trigger::RemUnchecked, figure: None,
        description: "remainder operations are not zero-checked" },
    Defect { id: "llvm-ubsan-d26", vendor: Vendor::Llvm, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectSanitizerCheck, ub_kind: UbKind::BufOverflowArray,
        introduced: 9, opt_levels: ALL_O, status: BugStatus::Reported,
        trigger: Trigger::BoundOffByOne, figure: None,
        description: "array-bound checks compare with an off-by-one bound" },
    Defect { id: "llvm-ubsan-d27", vendor: Vendor::Llvm, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectSanitizerCheck, ub_kind: UbKind::NullDeref,
        introduced: 7, opt_levels: ALL_O, status: BugStatus::Reported,
        trigger: Trigger::NullCheckAfterOffset, figure: None,
        description: "null checks placed after the member-offset addition" },
    Defect { id: "llvm-ubsan-d28", vendor: Vendor::Llvm, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectExprFolding, ub_kind: UbKind::ShiftOverflow,
        introduced: 12, opt_levels: O2_UP, status: BugStatus::Reported,
        trigger: Trigger::ShiftAmountCast, figure: None,
        description: "shift-pair folding drops the exponent check when the amount was cast" },
    Defect { id: "llvm-ubsan-d30", vendor: Vendor::Llvm, sanitizer: Sanitizer::Ubsan,
        category: DefectCategory::IncorrectSanitizerCheck, ub_kind: UbKind::IntOverflow,
        introduced: 11, opt_levels: ALL_O, status: BugStatus::Reported,
        trigger: Trigger::NegationUnchecked, figure: None,
        description: "unary negation overflow (-INT_MIN) is never checked" },
    // ---- LLVM MSan: 1 ----
    Defect { id: "llvm-msan-d29", vendor: Vendor::Llvm, sanitizer: Sanitizer::Msan,
        category: DefectCategory::IncorrectOperationHandling, ub_kind: UbKind::UninitUse,
        introduced: 5, opt_levels: O1_UP, status: BugStatus::Confirmed,
        trigger: Trigger::MsanSubConst, figure: Some("Fig.12f"),
        description: "shadow for `x - constant` treated as fully defined" },
];

/// A view over the defect corpus with an enable/disable mask.
#[derive(Debug, Clone)]
pub struct DefectRegistry {
    enabled: Vec<&'static str>,
    /// Stable fingerprint of the enabled set, precomputed because the
    /// sanitize-stage cache keys on it for every compile.
    fp: u64,
}

/// Order-independent stable hash of an id set: FNV-1a over the sorted ids
/// with a separator byte, so `only(["a","b"])` and `only(["b","a"])` name
/// the same registry epoch. Inline rather than `DefaultHasher` (std does
/// not pin that across releases, and the value is persisted in store keys).
fn fingerprint_ids(ids: &[&'static str]) -> u64 {
    let mut sorted: Vec<&str> = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in sorted {
        for &b in id.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Default for DefectRegistry {
    fn default() -> DefectRegistry {
        DefectRegistry::full()
    }
}

impl DefectRegistry {
    /// All 30 defects enabled (the paper's world).
    pub fn full() -> DefectRegistry {
        let enabled: Vec<&'static str> = DEFECTS.iter().map(|d| d.id).collect();
        let fp = fingerprint_ids(&enabled);
        DefectRegistry { enabled, fp }
    }

    /// No defects — correct sanitizers (ablation baseline).
    pub fn pristine() -> DefectRegistry {
        DefectRegistry { enabled: Vec::new(), fp: fingerprint_ids(&[]) }
    }

    /// Only the listed defect ids.
    pub fn only(ids: &[&'static str]) -> DefectRegistry {
        DefectRegistry { enabled: ids.to_vec(), fp: fingerprint_ids(ids) }
    }

    /// A stable fingerprint of the enabled-defect set — the "registry
    /// epoch" in sanitize-stage cache keys. Equal sets (in any order)
    /// fingerprint equally; the value is stable across builds so it can be
    /// persisted in store keys.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Looks up a defect by id.
    pub fn get(id: &str) -> Option<&'static Defect> {
        DEFECTS.iter().find(|d| d.id == id)
    }

    /// Defects active for a compilation: enabled, matching vendor/sanitizer,
    /// version ≥ introduced, and the opt level in the defect's mask.
    pub fn active(
        &self,
        vendor: Vendor,
        version: u32,
        opt: OptLevel,
        sanitizer: Sanitizer,
    ) -> Vec<&'static Defect> {
        DEFECTS
            .iter()
            .filter(|d| {
                self.enabled.contains(&d.id)
                    && d.vendor == vendor
                    && d.sanitizer == sanitizer
                    && version >= d.introduced
                    && d.opt_levels.contains(&opt)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_table3_distribution() {
        let count = |v, s| DEFECTS.iter().filter(|d| d.vendor == v && d.sanitizer == s).count();
        assert_eq!(count(Vendor::Gcc, Sanitizer::Asan), 8);
        assert_eq!(count(Vendor::Gcc, Sanitizer::Ubsan), 7);
        assert_eq!(count(Vendor::Llvm, Sanitizer::Asan), 6);
        assert_eq!(count(Vendor::Llvm, Sanitizer::Ubsan), 8);
        assert_eq!(count(Vendor::Llvm, Sanitizer::Msan), 1);
        assert_eq!(DEFECTS.len(), 30);
    }

    #[test]
    fn corpus_matches_table6_categories() {
        let count = |v, c| {
            DEFECTS.iter().filter(|d| d.vendor == v && d.category == c).count()
        };
        use DefectCategory::*;
        assert_eq!(count(Vendor::Gcc, NoSanitizerCheck), 2);
        // Table 6 lists 5 for GCC: 4 real + the invalid report.
        assert_eq!(count(Vendor::Gcc, IncorrectSanitizerOpt), 4);
        assert_eq!(count(Vendor::Gcc, WrongRedZone), 1);
        assert_eq!(count(Vendor::Gcc, IncorrectSanitizerCheck), 2);
        assert_eq!(count(Vendor::Gcc, IncorrectExprFolding), 4);
        assert_eq!(count(Vendor::Gcc, WrongLineInfo), 2);
        assert_eq!(count(Vendor::Llvm, NoSanitizerCheck), 2);
        assert_eq!(count(Vendor::Llvm, IncorrectSanitizerOpt), 3);
        assert_eq!(count(Vendor::Llvm, WrongRedZone), 1);
        assert_eq!(count(Vendor::Llvm, IncorrectSanitizerCheck), 7);
        assert_eq!(count(Vendor::Llvm, IncorrectExprFolding), 1);
        assert_eq!(count(Vendor::Llvm, IncorrectOperationHandling), 1);
    }

    #[test]
    fn fixed_and_confirmed_counts_match_table3() {
        let fixed = DEFECTS.iter().filter(|d| d.status == BugStatus::Fixed).count();
        assert_eq!(fixed, 6, "Table 3: 6 fixed, all in GCC");
        assert!(DEFECTS
            .iter()
            .filter(|d| d.status == BugStatus::Fixed)
            .all(|d| d.vendor == Vendor::Gcc));
        let confirmed = DEFECTS
            .iter()
            .filter(|d| matches!(d.status, BugStatus::Confirmed | BugStatus::Fixed))
            .count();
        assert_eq!(confirmed, 20, "Table 3: 20 confirmed");
    }

    #[test]
    fn every_generatable_kind_is_covered() {
        for kind in UbKind::GENERATABLE {
            assert!(
                DEFECTS.iter().any(|d| d.ub_kind == kind),
                "Fig. 7: bugs found in every UB kind — missing {kind}"
            );
        }
    }

    #[test]
    fn activation_respects_gates() {
        let reg = DefectRegistry::full();
        let d01 = reg.active(Vendor::Gcc, 13, OptLevel::O2, Sanitizer::Asan);
        assert!(d01.iter().any(|d| d.id == "gcc-asan-d01"));
        // Too old a version.
        let old = reg.active(Vendor::Gcc, 5, OptLevel::O2, Sanitizer::Asan);
        assert!(!old.iter().any(|d| d.id == "gcc-asan-d01"));
        // Wrong opt level.
        let o0 = reg.active(Vendor::Gcc, 13, OptLevel::O0, Sanitizer::Asan);
        assert!(!o0.iter().any(|d| d.id == "gcc-asan-d01"));
        // Pristine registry.
        assert!(DefectRegistry::pristine()
            .active(Vendor::Gcc, 13, OptLevel::O2, Sanitizer::Asan)
            .is_empty());
    }

    #[test]
    fn fingerprint_is_order_independent_and_set_sensitive() {
        let a = DefectRegistry::only(&["gcc-asan-d01", "llvm-ubsan-d22"]);
        let b = DefectRegistry::only(&["llvm-ubsan-d22", "gcc-asan-d01"]);
        assert_eq!(a.fingerprint(), b.fingerprint(), "order must not matter");
        assert_ne!(a.fingerprint(), DefectRegistry::pristine().fingerprint());
        assert_ne!(a.fingerprint(), DefectRegistry::full().fingerprint());
        assert_eq!(DefectRegistry::full().fingerprint(), DefectRegistry::default().fingerprint());
        // Pinned: the value is persisted in store keys, so it must never
        // drift between builds.
        assert_eq!(DefectRegistry::pristine().fingerprint(), 0xcbf2_9ce4_8422_2325);
    }
}
