//! Native trace e2e (feature `real-toolchain`): gdb single-steps a real
//! `-g` binary into a line-granular [`SiteTrace`]. Skips gracefully — never
//! fails — when the machine has no compiler or no debugger, exactly like
//! the CcBackend e2e test (CI's `features` job runs it either way).

#![cfg(feature = "real-toolchain")]

use ubfuzz_backend::cc::CcBackend;
use ubfuzz_backend::{Artifact, CompileRequest, CompilerBackend, RunRequest, TraceCapability};
use ubfuzz_minic::parse;
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::session::ProgramFingerprint;
use ubfuzz_simcc::target::OptLevel;
use ubfuzz_simcc::SanPolicy;

#[test]
fn native_line_trace_or_skip() {
    let Some(backend) = CcBackend::detect() else {
        eprintln!("skipping: no gcc/clang on $PATH");
        return;
    };
    if backend.gdb().is_none() {
        eprintln!("skipping: no gdb on $PATH (trace capability degrades to None)");
        assert_eq!(backend.trace_capability(), TraceCapability::None);
        return;
    }
    assert_eq!(backend.trace_capability(), TraceCapability::Line);

    // Program coordinates: the loop body (line 4) and the print (line 6)
    // both execute; line 9 is dead.
    let program = parse(
        "int g;\n\
         int main(void) {\n\
             for (g = 0; g < 3; g = g + 1) {\n\
                 g = g + 0;\n\
             }\n\
             print_value(g);\n\
             return 0;\n\
             g = 9;\n\
             return g;\n\
         }",
    )
    .unwrap();
    let registry = DefectRegistry::pristine();
    let req = CompileRequest {
        compiler: backend.toolchains()[0].id,
        opt: OptLevel::O0,
        sanitizer: None,
        registry: &registry,
        san_policy: SanPolicy::Full,
    };
    let artifact = backend
        .compile(&ProgramFingerprint::empty(), &program, &req)
        .expect("plain -O0 compile works wherever a driver exists");
    assert!(matches!(artifact, Artifact::Native(_)));
    let Some(trace) = backend.trace(&artifact, &RunRequest::default()) else {
        // A present-but-uncooperative gdb (containers without ptrace) is
        // the documented graceful-degradation path.
        eprintln!("skipping: gdb present but single-stepping produced no trace");
        return;
    };
    assert!(trace.line_granular(), "native traces are line-granular");
    assert!(trace.line_count() > 0);
    assert!(trace.contains_line(6), "the executed print line is in the trace");
}
