//! `CcBackend` — the real-toolchain adapter (feature `real-toolchain`).
//!
//! Shells out to actual gcc/clang found on `$PATH`: probes `--version` to
//! discover toolchains, maps [`Sanitizer`] choices to `-fsanitize=` flags,
//! and parses real sanitizer stderr back into the campaign's [`RunOutcome`]
//! vocabulary. When no toolchain is installed, [`CcBackend::detect`] returns
//! `None` and callers skip gracefully — the feature compiling does not
//! require a compiler to be present.
//!
//! Scope note: a real toolchain carries no injected-defect metadata, so
//! artifacts are opaque binaries ([`crate::Artifact::Native`]); campaigns
//! over this backend observe discrepancies but cannot attribute them to
//! registry defects. That is the point — the same loop now tests
//! heterogeneous sanitizer implementations, not just the simulated world.

use crate::{
    Artifact, CompileRequest, CompilerBackend, NativeArtifact, RunOutcome, RunRequest, SiteTrace,
    ToolchainDesc, TraceCapability,
};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use ubfuzz_minic::{pretty, Loc, Program};
use ubfuzz_simcc::lower::CompileError;
use ubfuzz_simcc::target::{CompilerId, Vendor};
use ubfuzz_simcc::Sanitizer;
use ubfuzz_simvm::{CrashKind, ReportKind, RunResult, SanReport};

/// Definitions the generated programs assume: the `print_value` builtin and
/// the allocator. Prepended to every pretty-printed program before handing
/// it to the real compiler.
const PRELUDE: &str = "#include <stdio.h>\n\
                       #include <stdlib.h>\n\
                       static void print_value(long long v) { printf(\"%lld\\n\", v); }\n";

/// One probed real toolchain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcTool {
    /// Which vendor family the driver belongs to.
    pub vendor: Vendor,
    /// Major version parsed from `--version`.
    pub version: u32,
    /// The driver invocation (e.g. `"gcc"`, `"clang"`, or an absolute path).
    pub program: String,
}

impl CcTool {
    fn sanitizers(&self) -> Vec<Sanitizer> {
        crate::vendor_sanitizers(self.vendor)
    }
}

/// A backend over real gcc/clang drivers.
#[derive(Debug)]
pub struct CcBackend {
    tools: Vec<CcTool>,
    workdir: PathBuf,
    counter: AtomicU64,
    /// The debugger driving [`CcBackend::trace`], when one answered the
    /// probe (`gdb --version`). `None` degrades tracing gracefully: the
    /// oracle accounts the discrepancy instead of arbitrating it.
    gdb: Option<String>,
}

/// The batch script gdb single-steps a `-g` binary with: break at `main`,
/// then line-step until the inferior exits (the `frame` error after exit
/// aborts the script, so nothing after the loop runs) or the step cap
/// trips — in which case the sentinel after the loop *does* print,
/// marking the transcript as truncated. Every visited line appears in the
/// output as a `file.c:N` frame location or a `N\t…` source echo —
/// exactly what the paper's LLDB-based `GetExecutedSites` collects.
const TRACE_SCRIPT: &str = "set pagination off\n\
                            set confirm off\n\
                            set style enabled off\n\
                            break main\n\
                            run\n\
                            set $ubfuzz_steps = 0\n\
                            while $ubfuzz_steps < 4096\n  \
                              set $ubfuzz_steps = $ubfuzz_steps + 1\n  \
                              frame\n  \
                              step\n\
                            end\n\
                            echo UBFUZZ-TRACE-CAP\\n\n";

/// Whether a gdb transcript ran out of step budget before the inferior
/// exited. A truncated trace must NOT arbitrate: its executed-site set is a
/// prefix (wrong verdicts on the normal side, a mid-execution "crash site"
/// on the crashing side), so callers degrade it to `None` — the accounted
/// `no-trace` drop path — instead.
fn trace_truncated(transcript: &str) -> bool {
    transcript.contains("UBFUZZ-TRACE-CAP")
}

impl CcBackend {
    /// Probes `$PATH` for gcc and clang; `None` when neither answers
    /// `--version` (callers should treat this as "skip", not "fail" — CI
    /// images and sandboxes routinely ship no system toolchain).
    pub fn detect() -> Option<CcBackend> {
        let mut tools = Vec::new();
        for (program, vendor) in [("gcc", Vendor::Gcc), ("clang", Vendor::Llvm)] {
            if let Some(version) = probe(program) {
                tools.push(CcTool { vendor, version, program: program.to_string() });
            }
        }
        if tools.is_empty() {
            None
        } else {
            Some(CcBackend::from_tools(tools))
        }
    }

    /// A backend over an explicit tool list — the mocked-probe path tests
    /// use, and an escape hatch for cross-compilers at unusual paths.
    pub fn from_tools(tools: Vec<CcTool>) -> CcBackend {
        // Workdirs are keyed by PID *and* a process-global instance id:
        // two backends in one process must never alias artifact paths
        // (each instance counts its own compiles from zero).
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        // A SIGKILLed worker (daemon lease reclaim) never runs Drop, so its
        // workdir outlives it; reclaim predecessors' leavings here, where
        // every new backend passes anyway.
        sweep_stale_workdirs(&std::env::temp_dir(), STALE_WORKDIR_AGE);
        let workdir = std::env::temp_dir().join(format!(
            "ubfuzz-cc-{}-{}",
            std::process::id(),
            INSTANCE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::create_dir_all(&workdir);
        // Tracing needs both a debugger and a writable script; missing
        // either degrades the capability, never the backend.
        let gdb = probe_gdb().filter(|_| {
            std::fs::write(workdir.join("trace.gdb"), TRACE_SCRIPT).is_ok()
        });
        CcBackend { tools, workdir, counter: AtomicU64::new(0), gdb }
    }

    /// The probed tools.
    pub fn tools(&self) -> &[CcTool] {
        &self.tools
    }

    /// The probed debugger driver, when native tracing is available.
    pub fn gdb(&self) -> Option<&str> {
        self.gdb.as_deref()
    }

    fn tool_for(&self, compiler: CompilerId) -> Option<&CcTool> {
        // A real installation has exactly one version per vendor; requests
        // for other versions of that vendor (e.g. Fig. 10 stable replays)
        // fall back to the installed driver.
        self.tools
            .iter()
            .find(|t| t.vendor == compiler.vendor && t.version == compiler.version)
            .or_else(|| self.tools.iter().find(|t| t.vendor == compiler.vendor))
    }
}

/// How old an orphaned workdir must be before the sweep removes it. The
/// age threshold guards the race where a sibling process created its
/// workdir but has not yet populated `/proc`-visible state we can check.
const STALE_WORKDIR_AGE: std::time::Duration = std::time::Duration::from_secs(3600);

/// Removes `ubfuzz-cc-<pid>-<n>` workdirs under `root` whose owning pid is
/// dead and whose directory is at least `max_age` old. Both conditions must
/// hold: liveness alone races against pid reuse, age alone would reap a
/// long-running sibling campaign's artifacts.
fn sweep_stale_workdirs(root: &std::path::Path, max_age: std::time::Duration) {
    let Ok(entries) = std::fs::read_dir(root) else { return };
    let own_pid = std::process::id();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pid) = name
            .strip_prefix("ubfuzz-cc-")
            .and_then(|rest| rest.split('-').next())
            .and_then(|pid| pid.parse::<u32>().ok())
        else {
            continue;
        };
        if pid == own_pid || pid_alive(pid) {
            continue;
        }
        let old_enough = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| mtime.elapsed().ok())
            .is_some_and(|age| age >= max_age);
        if old_enough {
            let _ = std::fs::remove_dir_all(entry.path());
        }
    }
}

/// Whether `pid` names a live process. Platforms without a cheap probe
/// answer "alive" — the conservative direction (never reap a live
/// sibling's artifacts).
#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    std::path::Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    true
}

/// Probes for a gdb on `$PATH`. Tracing is optional equipment: CI images
/// routinely ship a compiler but no debugger.
fn probe_gdb() -> Option<String> {
    let out = Command::new("gdb").arg("--version").stdin(Stdio::null()).output().ok()?;
    out.status.success().then(|| "gdb".to_string())
}

/// Extracts the executed program lines, in output order, from a gdb batch
/// single-step transcript. Pure — unit-tested against canned transcripts
/// without any debugger present.
///
/// Two shapes carry line information: frame locations (`… at p0.c:12`,
/// also printed by breakpoints) and source echo lines (`12\t    g = 7;`,
/// or `12\tin /tmp/p0.c` once the temporary source is deleted). Lines from
/// other files (libc frames after a sanitizer abort) are ignored, and the
/// prelude's lines are shifted out exactly as in [`parse_run_output`].
pub fn parse_gdb_trace(output: &str, source_file: &str, prelude_lines: u32) -> Vec<u32> {
    let marker = format!("{source_file}:");
    let mut lines = Vec::new();
    for raw in output.lines() {
        let n = if let Some(pos) = raw.find(&marker) {
            let digits: String = raw[pos + marker.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            digits.parse::<u32>().ok()
        } else if raw.contains(source_file) || !raw.contains(".c") {
            // Source echo: leading line number, then a tab. Requiring the
            // tab keeps inferior stdout (bare print_value numbers) out;
            // echoes naming some other file fell through the guard above.
            raw.split_once('\t').and_then(|(head, _)| head.parse::<u32>().ok())
        } else {
            None
        };
        if let Some(n) = n {
            if n > prelude_lines {
                lines.push(n - prelude_lines);
            }
        }
    }
    lines
}

/// Wall-clock budget for one gdb single-step trace: stepping is roughly an
/// order of magnitude slower than running, so four run budgets, capped at a
/// minute.
fn trace_budget(req: &RunRequest) -> std::time::Duration {
    (run_budget(req) * 4).min(std::time::Duration::from_secs(60))
}

/// Runs `program --version` and parses the major version from its first
/// output line.
fn probe(program: &str) -> Option<u32> {
    let out = Command::new(program)
        .arg("--version")
        .stdin(Stdio::null())
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    parse_version_output(&String::from_utf8_lossy(&out.stdout))
}

/// Parses the major version out of a `--version` banner, e.g.
/// `gcc (Debian 12.2.0-14+deb12u1) 12.2.0` or `clang version 15.0.7`.
pub fn parse_version_output(output: &str) -> Option<u32> {
    let first = output.lines().next()?;
    for token in first.split_whitespace() {
        let Some(dot) = token.find('.') else { continue };
        if let Ok(major) = token[..dot].parse::<u32>() {
            return Some(major);
        }
    }
    None
}

/// The `-fsanitize=` spelling of a sanitizer choice.
pub fn sanitize_flag(sanitizer: Sanitizer) -> &'static str {
    match sanitizer {
        Sanitizer::Asan => "-fsanitize=address",
        Sanitizer::Ubsan => "-fsanitize=undefined",
        Sanitizer::Msan => "-fsanitize=memory",
    }
}

/// Substring markers real sanitizers print, mapped into the simulated
/// report vocabulary. Order matters: the first match wins, and more
/// specific markers come first.
const REPORT_MARKERS: &[(&str, ReportKind)] = &[
    ("stack-buffer-overflow", ReportKind::StackBufOverflow),
    ("global-buffer-overflow", ReportKind::GlobalBufOverflow),
    ("heap-buffer-overflow", ReportKind::HeapBufOverflow),
    ("heap-use-after-free", ReportKind::UseAfterFree),
    ("stack-use-after-scope", ReportKind::UseAfterScope),
    ("attempting double-free", ReportKind::BadFree),
    ("attempting free on address", ReportKind::BadFree),
    ("use-of-uninitialized-value", ReportKind::UninitUse),
    ("signed integer overflow", ReportKind::SignedIntOverflow),
    ("cannot be represented", ReportKind::NegOverflow),
    ("shift exponent", ReportKind::ShiftOob),
    ("division by zero", ReportKind::DivByZero),
    ("null pointer", ReportKind::NullDeref),
    ("out of bounds", ReportKind::ArrayBound),
];

/// Which sanitizer family a report line came from, when the requested one
/// is unknown.
fn sanitizer_of_line(line: &str) -> Option<Sanitizer> {
    if line.contains("AddressSanitizer") {
        Some(Sanitizer::Asan)
    } else if line.contains("MemorySanitizer") {
        Some(Sanitizer::Msan)
    } else if line.contains("runtime error") {
        Some(Sanitizer::Ubsan)
    } else {
        None
    }
}

/// Best-effort `file.c:LINE[:COL]` extraction from a report line. The
/// prelude occupies the first `PRELUDE_LINES` lines of the emitted source,
/// so line numbers are shifted back to program coordinates.
fn parse_loc(line: &str, prelude_lines: u32) -> Loc {
    let Some(pos) = line.find(".c:") else { return Loc::default() };
    let rest = &line[pos + 3..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    match digits.parse::<u32>() {
        Ok(n) if n > prelude_lines => Loc::new(n - prelude_lines, 0),
        _ => Loc::default(),
    }
}

/// Classifies one finished real-toolchain run into the campaign's
/// [`RunOutcome`] shape. Pure — unit-tested against canned sanitizer
/// output without any toolchain present.
pub fn parse_run_output(
    requested: Option<Sanitizer>,
    exit_code: Option<i64>,
    signal: Option<i32>,
    stdout: &str,
    stderr: &str,
    prelude_lines: u32,
) -> RunOutcome {
    for line in stderr.lines() {
        for (marker, kind) in REPORT_MARKERS {
            if line.contains(marker) {
                let sanitizer = requested
                    .or_else(|| sanitizer_of_line(line))
                    .unwrap_or(Sanitizer::Asan);
                return RunResult::Report(SanReport {
                    sanitizer,
                    kind: *kind,
                    loc: parse_loc(line, prelude_lines),
                });
            }
        }
    }
    if let Some(sig) = signal {
        return match sig {
            8 => RunResult::Crash { kind: CrashKind::Fpe, loc: Loc::default() },
            4 | 6 | 7 | 11 => RunResult::Crash { kind: CrashKind::Segv, loc: Loc::default() },
            other => RunResult::Error(format!("terminated by signal {other}")),
        };
    }
    match exit_code {
        Some(status) => RunResult::Exit {
            status,
            output: stdout.lines().filter_map(|l| l.trim().parse::<i64>().ok()).collect(),
        },
        None => RunResult::Error("no exit status and no signal".into()),
    }
}

impl CompilerBackend for CcBackend {
    fn name(&self) -> &str {
        "cc"
    }

    fn toolchains(&self) -> Vec<ToolchainDesc> {
        self.tools
            .iter()
            .map(|t| ToolchainDesc {
                id: CompilerId { vendor: t.vendor, version: t.version },
                label: format!("{} {} ({})", t.vendor, t.version, t.program),
                sanitizers: t.sanitizers(),
            })
            .collect()
    }

    fn compile(
        &self,
        _fp: &ubfuzz_simcc::session::ProgramFingerprint,
        program: &Program,
        req: &CompileRequest<'_>,
    ) -> Result<Artifact, CompileError> {
        let tool = self.tool_for(req.compiler).ok_or_else(|| CompileError {
            message: format!("no installed toolchain for {}", req.compiler),
        })?;
        if let Some(s) = req.sanitizer {
            if !tool.sanitizers().contains(&s) {
                return Err(CompileError {
                    message: format!("{} does not support {s}", tool.program),
                });
            }
        }
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        let src_path = self.workdir.join(format!("p{id}.c"));
        let bin_path = self.workdir.join(format!("p{id}.bin"));
        let source = format!("{PRELUDE}{}", pretty::print(program));
        std::fs::write(&src_path, &source)
            .map_err(|e| CompileError { message: format!("write {}: {e}", src_path.display()) })?;
        let mut cmd = Command::new(&tool.program);
        cmd.arg(req.opt.name())
            .arg("-w")
            .arg("-g")
            .arg("-fno-omit-frame-pointer")
            .args(req.sanitizer.iter().map(|s| sanitize_flag(*s)))
            .arg("-o")
            .arg(&bin_path)
            .arg(&src_path)
            .stdin(Stdio::null());
        let out = cmd
            .output()
            .map_err(|e| CompileError { message: format!("spawn {}: {e}", tool.program) })?;
        let _ = std::fs::remove_file(&src_path);
        if !out.status.success() {
            let stderr = String::from_utf8_lossy(&out.stderr);
            return Err(CompileError {
                message: format!(
                    "{} exited with {}: {}",
                    tool.program,
                    out.status,
                    stderr.lines().next().unwrap_or("")
                ),
            });
        }
        Ok(Artifact::Native(NativeArtifact {
            binary: bin_path,
            compiler: req.compiler,
            sanitizer: req.sanitizer,
        }))
    }

    fn execute(&self, artifact: &Artifact, req: &RunRequest) -> RunOutcome {
        let Artifact::Native(n) = artifact else {
            return RunResult::Error("CcBackend cannot execute simulated artifacts".into());
        };
        let mut child = match Command::new(&n.binary)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .env("ASAN_OPTIONS", "detect_leaks=0")
            .spawn()
        {
            Ok(child) => child,
            Err(e) => return RunResult::Error(format!("run {}: {e}", n.binary.display())),
        };
        // Generated programs can loop forever (the simulated VM has a step
        // budget for the same reason); poll with a wall-clock budget derived
        // from the step limit and classify overruns as Timeout instead of
        // hanging a campaign worker.
        let deadline = std::time::Instant::now() + run_budget(req);
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) if std::time::Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return RunResult::Timeout;
                }
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(2)),
                Err(e) => return RunResult::Error(format!("wait: {e}")),
            }
        };
        // Outputs are a handful of print_value lines / one sanitizer report,
        // far below the pipe buffer, so reading after exit cannot deadlock.
        let mut stdout = String::new();
        let mut stderr = String::new();
        use std::io::Read as _;
        if let Some(mut s) = child.stdout.take() {
            let _ = s.read_to_string(&mut stdout);
        }
        if let Some(mut s) = child.stderr.take() {
            let _ = s.read_to_string(&mut stderr);
        }
        parse_run_output(
            n.sanitizer,
            status.code().map(i64::from),
            exit_signal(&status),
            &stdout,
            &stderr,
            prelude_lines(),
        )
    }

    fn trace_capability(&self) -> TraceCapability {
        if self.gdb.is_some() {
            TraceCapability::Line
        } else {
            TraceCapability::None
        }
    }

    /// Line-granular `GetExecutedSites` over a native binary: gdb
    /// single-steps the `-g` build (the paper's LLDB mechanism) and every
    /// visited source line is collected from the step transcript. `None`
    /// whenever the machinery is unavailable *or incomplete* — no gdb,
    /// stepping timed out, the step cap truncated the transcript, or no
    /// program line surfaced — so the oracle accounts the discrepancy
    /// instead of mis-arbitrating it on partial executed-site data.
    fn trace(&self, artifact: &Artifact, req: &RunRequest) -> Option<SiteTrace> {
        let Artifact::Native(n) = artifact else { return None };
        let gdb = self.gdb.as_deref()?;
        let source_file = format!("{}.c", n.binary.file_stem()?.to_str()?);
        let mut child = Command::new(gdb)
            .arg("--batch")
            .arg("-nx")
            .arg("-x")
            .arg(self.workdir.join("trace.gdb"))
            .arg(&n.binary)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .env("ASAN_OPTIONS", "detect_leaks=0")
            .spawn()
            .ok()?;
        // Single-stepping produces output far beyond the pipe buffer, so a
        // reader thread drains it while this thread enforces the wall-clock
        // budget (a `while (1);` body makes one `step` never return).
        let mut stdout = child.stdout.take()?;
        let reader = std::thread::spawn(move || {
            use std::io::Read as _;
            let mut s = String::new();
            let _ = stdout.read_to_string(&mut s);
            s
        });
        let deadline = std::time::Instant::now() + trace_budget(req);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if std::time::Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = reader.join();
                    return None;
                }
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(5)),
                Err(_) => {
                    let _ = child.kill();
                    let _ = reader.join();
                    return None;
                }
            }
        }
        let transcript = reader.join().ok()?;
        if trace_truncated(&transcript) {
            return None;
        }
        let lines = parse_gdb_trace(&transcript, &source_file, prelude_lines());
        if lines.is_empty() {
            return None;
        }
        Some(SiteTrace::from_lines(lines))
    }
}

/// Wall-clock budget for one native run: the step limit read as
/// "instructions at a conservative 1 MHz", clamped to [1 s, 30 s] — the
/// default 4M-step limit maps to 4 s, plenty for programs this size.
fn run_budget(req: &RunRequest) -> std::time::Duration {
    std::time::Duration::from_millis((req.step_limit / 1000).clamp(1_000, 30_000))
}

/// Lines the prelude adds before the program's own first line.
fn prelude_lines() -> u32 {
    PRELUDE.lines().count() as u32
}

#[cfg(unix)]
fn exit_signal(status: &std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn exit_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;
    use ubfuzz_simcc::defects::DefectRegistry;
    use ubfuzz_simcc::session::ProgramFingerprint;
    use ubfuzz_simcc::target::OptLevel;
    use ubfuzz_simcc::SanPolicy;

    #[test]
    fn version_banners_parse() {
        // Mocked toolchain probe: the parser sees canned banners, no
        // compiler needs to be installed.
        let cases = [
            ("gcc (Debian 12.2.0-14+deb12u1) 12.2.0\nCopyright (C) 2022", Some(12)),
            ("gcc (GCC) 13.2.1 20230801", Some(13)),
            ("clang version 15.0.7\nTarget: x86_64", Some(15)),
            ("Ubuntu clang version 14.0.0-1ubuntu1", Some(14)),
            ("Apple clang version 16.0.0 (clang-1600.0.26.3)", Some(16)),
            ("not a compiler at all", None),
            ("", None),
        ];
        for (banner, expect) in cases {
            assert_eq!(parse_version_output(banner), expect, "{banner:?}");
        }
    }

    #[test]
    fn mocked_tools_surface_as_toolchains() {
        let backend = CcBackend::from_tools(vec![
            CcTool { vendor: Vendor::Gcc, version: 12, program: "gcc".into() },
            CcTool { vendor: Vendor::Llvm, version: 15, program: "clang".into() },
        ]);
        let tc = backend.toolchains();
        assert_eq!(tc.len(), 2);
        assert_eq!(tc[0].id, CompilerId { vendor: Vendor::Gcc, version: 12 });
        assert!(!tc[0].supports(Sanitizer::Msan), "real GCC ships no MSan either");
        assert!(tc[1].supports(Sanitizer::Msan));
        assert!(tc[1].label.contains("clang"));
    }

    #[test]
    fn stable_version_requests_fall_back_to_the_installed_driver() {
        let backend = CcBackend::from_tools(vec![CcTool {
            vendor: Vendor::Gcc,
            version: 12,
            program: "gcc".into(),
        }]);
        let t = backend.tool_for(CompilerId { vendor: Vendor::Gcc, version: 9 }).unwrap();
        assert_eq!(t.version, 12);
        assert!(backend.tool_for(CompilerId { vendor: Vendor::Llvm, version: 15 }).is_none());
    }

    #[test]
    fn sanitizer_flags_spell_like_the_drivers() {
        assert_eq!(sanitize_flag(Sanitizer::Asan), "-fsanitize=address");
        assert_eq!(sanitize_flag(Sanitizer::Ubsan), "-fsanitize=undefined");
        assert_eq!(sanitize_flag(Sanitizer::Msan), "-fsanitize=memory");
    }

    #[test]
    fn real_asan_stderr_parses_into_a_report() {
        let stderr = "=================================================================\n\
            ==12345==ERROR: AddressSanitizer: heap-buffer-overflow on address 0x602000000018\n\
            READ of size 4 at 0x602000000018 thread T0\n\
            #0 0x55e3 in main /tmp/p0.c:7:9\n";
        let r = parse_run_output(Some(Sanitizer::Asan), Some(1), None, "", stderr, 3);
        match r {
            RunResult::Report(rep) => {
                assert_eq!(rep.kind, ReportKind::HeapBufOverflow);
                assert_eq!(rep.sanitizer, Sanitizer::Asan);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn real_ubsan_stderr_parses_with_shifted_line() {
        let stderr = "/tmp/p0.c:8:13: runtime error: signed integer overflow: \
                      2147483647 + 1 cannot be represented in type 'int'\n";
        let r = parse_run_output(Some(Sanitizer::Ubsan), Some(0), None, "", stderr, 3);
        match r {
            RunResult::Report(rep) => {
                assert_eq!(rep.kind, ReportKind::SignedIntOverflow);
                assert_eq!(rep.loc, Loc::new(5, 0), "prelude lines subtracted");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clean_runs_and_signals_classify() {
        let clean = parse_run_output(None, Some(3), None, "42\n-7\nnoise\n", "", 3);
        assert_eq!(clean, RunResult::Exit { status: 3, output: vec![42, -7] });
        assert!(matches!(
            parse_run_output(None, None, Some(8), "", "", 3),
            RunResult::Crash { kind: CrashKind::Fpe, .. }
        ));
        assert!(matches!(
            parse_run_output(None, None, Some(11), "", "", 3),
            RunResult::Crash { kind: CrashKind::Segv, .. }
        ));
    }

    #[test]
    fn gdb_transcripts_parse_into_program_lines() {
        // Canned gdb batch output: breakpoint + frame locations + source
        // echoes (with the temporary source already deleted), inferior
        // stdout noise, and post-abort libc frames that must not leak in.
        let transcript = "\
            Breakpoint 1, main () at /tmp/ubfuzz-cc-1-0/p0.c:5\n\
            5\tin /tmp/ubfuzz-cc-1-0/p0.c\n\
            #0  main () at /tmp/ubfuzz-cc-1-0/p0.c:5\n\
            6\tin /tmp/ubfuzz-cc-1-0/p0.c\n\
            42\n\
            #0  main () at /tmp/ubfuzz-cc-1-0/p0.c:7\n\
            7\t    g = 7;\n\
            Program received signal SIGABRT, Aborted.\n\
            0x00007ffff7e2a9fc in __pthread_kill_implementation () at ./nptl/pthread_kill.c:44\n\
            44\t./nptl/pthread_kill.c: No such file or directory.\n\
            #0  0x00007ffff7e2a9fc in raise () at ../sysdeps/posix/raise.c:26\n";
        // Prelude of 3 lines: program line N surfaces as N - 3.
        let lines = parse_gdb_trace(transcript, "p0.c", 3);
        assert_eq!(lines, vec![2, 2, 2, 3, 4, 4], "5→2, 6→3, 7→4; libc + stdout ignored");
        // Prelude-only lines (the print_value body) are shifted out.
        assert!(parse_gdb_trace("#0  print_value () at /tmp/p0.c:3\n", "p0.c", 3).is_empty());
        assert!(parse_gdb_trace("", "p0.c", 3).is_empty());
    }

    #[test]
    fn step_cap_sentinel_marks_truncated_transcripts() {
        // Inferior exited: the frame error aborts the script before the
        // sentinel, so the transcript is complete and usable.
        let complete = "#0  main () at /tmp/p0.c:5\n\
                        [Inferior 1 (process 7) exited normally]\n\
                        trace.gdb:9: Error in sourced command file:\n\
                        No stack.\n";
        assert!(!trace_truncated(complete));
        // Step cap exhausted with the inferior still alive: the sentinel
        // prints and the trace is a prefix — arbitrating on it could flip
        // the verdict, so it must be rejected, not returned.
        let truncated = "#0  main () at /tmp/p0.c:5\nUBFUZZ-TRACE-CAP\n";
        assert!(trace_truncated(truncated));
        // The sentinel itself never parses as an executed line.
        assert!(parse_gdb_trace("UBFUZZ-TRACE-CAP\n", "p0.c", 3).is_empty());
        // And the script actually ends with it.
        assert!(TRACE_SCRIPT.ends_with("echo UBFUZZ-TRACE-CAP\\n\n"));
    }

    #[test]
    fn stale_workdir_sweep_reaps_dead_pids_only() {
        let root = std::env::temp_dir().join(format!(
            "ubfuzz-cc-sweep-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        // A live owner (this process), a dead owner (pid_max-adjacent ids
        // are never handed out to tests), and an unrelated directory.
        let live = root.join(format!("ubfuzz-cc-{}-0", std::process::id()));
        let dead = root.join("ubfuzz-cc-4294967294-0");
        let other = root.join("some-other-dir");
        for d in [&live, &dead, &other] {
            std::fs::create_dir_all(d).unwrap();
        }
        // Age 0 isolates the liveness condition from mtime flakiness.
        sweep_stale_workdirs(&root, std::time::Duration::ZERO);
        assert!(live.exists(), "live owner's workdir survives");
        assert!(other.exists(), "non-matching names are never touched");
        if cfg!(target_os = "linux") {
            assert!(!dead.exists(), "dead owner's workdir is reaped");
        } else {
            assert!(dead.exists(), "no liveness probe: keep conservatively");
        }
        // A fresh dead-pid dir survives the production age threshold.
        std::fs::create_dir_all(&dead).unwrap();
        sweep_stale_workdirs(&root, STALE_WORKDIR_AGE);
        assert!(dead.exists(), "age threshold guards against pid-reuse races");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn trace_capability_tracks_the_debugger_probe() {
        let backend = CcBackend::from_tools(vec![CcTool {
            vendor: Vendor::Gcc,
            version: 12,
            program: "gcc".into(),
        }]);
        // The probe's answer depends on the machine; the capability must
        // track it and never claim exact sites.
        match backend.gdb() {
            Some(_) => assert_eq!(backend.trace_capability(), TraceCapability::Line),
            None => assert_eq!(backend.trace_capability(), TraceCapability::None),
        }
        // Simulated artifacts are foreign to this backend either way.
        let sim_like = Artifact::Native(NativeArtifact {
            binary: PathBuf::from("/nonexistent/ubfuzz-cc-trace-test.bin"),
            compiler: CompilerId { vendor: Vendor::Gcc, version: 12 },
            sanitizer: None,
        });
        if backend.gdb().is_none() {
            assert!(backend.trace(&sim_like, &RunRequest::default()).is_none());
        }
    }

    #[test]
    fn trace_budget_scales_and_caps() {
        let d = |steps: u64| trace_budget(&RunRequest { step_limit: steps }).as_millis();
        assert_eq!(d(RunRequest::default().step_limit), 16_000, "4 s run → 16 s trace");
        assert_eq!(d(u64::MAX / 2), 60_000, "ceiling");
    }

    #[test]
    fn run_budget_derives_from_the_step_limit() {
        let d = |steps: u64| run_budget(&RunRequest { step_limit: steps }).as_millis();
        assert_eq!(d(RunRequest::default().step_limit), 4_000, "default 4M steps → 4 s");
        assert_eq!(d(1), 1_000, "floor");
        assert_eq!(d(u64::MAX / 2), 30_000, "ceiling");
    }

    /// A non-terminating program must classify as Timeout, not hang the
    /// campaign worker. Skips without a toolchain, like the e2e test.
    #[test]
    fn infinite_loops_time_out_or_skip() {
        let Some(backend) = CcBackend::detect() else {
            eprintln!("skipping: no gcc/clang on $PATH");
            return;
        };
        let program =
            parse("int g; int main(void) { while (g == 0) { g = 0; } return 0; }").unwrap();
        let registry = DefectRegistry::pristine();
        let req = CompileRequest {
            compiler: backend.toolchains()[0].id,
            opt: OptLevel::O0,
            sanitizer: None,
            registry: &registry,
            san_policy: SanPolicy::Full,
        };
        let artifact =
            backend.compile(&ProgramFingerprint::empty(), &program, &req).expect("compiles");
        let outcome = backend.execute(&artifact, &RunRequest { step_limit: 1 });
        assert_eq!(outcome, RunResult::Timeout, "1 s budget trips on the infinite loop");
    }

    /// End-to-end against whatever toolchain the machine actually has.
    /// Skips (does not fail) when `$PATH` has neither gcc nor clang, and
    /// tolerates missing sanitizer runtimes the same way.
    #[test]
    fn detect_compile_execute_or_skip() {
        let Some(backend) = CcBackend::detect() else {
            eprintln!("skipping: no gcc/clang on $PATH");
            return;
        };
        let tc = backend.toolchains();
        assert!(!tc.is_empty());
        let program = parse(
            "int main(void) { int x = 6; print_value(x * 7); return x; }",
        )
        .unwrap();
        let registry = DefectRegistry::pristine();
        let req = CompileRequest {
            compiler: tc[0].id,
            opt: OptLevel::O2,
            sanitizer: None,
            registry: &registry,
            san_policy: SanPolicy::Full,
        };
        let artifact = backend
            .compile(&ProgramFingerprint::empty(), &program, &req)
            .expect("plain compile works wherever a driver exists");
        assert!(artifact.module().is_none(), "native artifacts are opaque");
        match backend.execute(&artifact, &RunRequest::default()) {
            RunResult::Exit { status, output } => {
                assert_eq!(status, 6);
                assert_eq!(output, vec![42]);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        // A sanitizer cell, tolerant of images without the ASan runtime.
        let overflow = parse(
            "int g[4]; int i = 9; int main(void) { g[i] = 1; return 0; }",
        )
        .unwrap();
        let req =
            CompileRequest { sanitizer: Some(Sanitizer::Asan), opt: OptLevel::O0, ..req };
        match backend.compile(&ProgramFingerprint::empty(), &overflow, &req) {
            Ok(artifact) => match backend.execute(&artifact, &RunRequest::default()) {
                RunResult::Report(rep) => {
                    assert_eq!(rep.kind, ReportKind::GlobalBufOverflow);
                    assert_eq!(rep.sanitizer, Sanitizer::Asan);
                }
                other => panic!("real ASan should report the overflow: {other:?}"),
            },
            Err(e) => eprintln!("skipping sanitizer cell (no ASan runtime?): {}", e.message),
        }
    }
}
