//! The default backend: the simulated multi-vendor toolchains of
//! [`ubfuzz_simcc`] executed on the [`ubfuzz_simvm`] VM.
//!
//! This is the defect-injected world the whole reproduction is measured in.
//! The backend is a thin adapter over [`CompileSession`] — campaign output
//! through it is bit-identical to calling the pipeline directly, cached or
//! not, because the session memoizes a deterministic prefix.

use crate::{
    vendor_sanitizers, Artifact, CompileRequest, CompilerBackend, PrefixCache, RunOutcome,
    RunRequest, ToolchainDesc,
};
use ubfuzz_minic::Program;
use ubfuzz_simcc::lower::CompileError;
use ubfuzz_simcc::session::{CompileSession, ProgramFingerprint};
use ubfuzz_simcc::target::{CompilerId, Vendor};
use ubfuzz_simvm::{run_with_config, RunResult, VmConfig};

/// The simulated-toolchain backend, wrapping a [`CompileSession`].
///
/// [`SimBackend::new`] enables staged-compile caching; [`SimBackend::uncached`]
/// degrades every compile to the single-shot pipeline (what cache-ablation
/// comparisons and the sequential reference loop use). Either way the
/// session is `Sync`, so one backend instance can serve every worker of a
/// parallel campaign — and persist across campaigns, which is what lets
/// `make_tables` share hot prefixes between table entry points.
#[derive(Debug, Default)]
pub struct SimBackend {
    session: CompileSession,
    /// The on-disk prefix table when this backend persists across
    /// invocations ([`SimBackend::with_store`]).
    store: Option<std::sync::Arc<ubfuzz_store::PrefixStore>>,
    /// The on-disk sanitize-stage table, opened alongside the prefix one.
    san_store: Option<std::sync::Arc<ubfuzz_store::SanitizedStore>>,
}

impl SimBackend {
    /// A backend with the staged-compile cache enabled.
    pub fn new() -> SimBackend {
        SimBackend { session: CompileSession::new(), store: None, san_store: None }
    }

    /// A backend whose every compile runs the full pipeline (no cache, no
    /// telemetry).
    pub fn uncached() -> SimBackend {
        SimBackend { session: CompileSession::disabled(), store: None, san_store: None }
    }

    /// A backend over an explicitly configured session (e.g. a bounded
    /// capacity).
    pub fn with_session(session: CompileSession) -> SimBackend {
        SimBackend { session, store: None, san_store: None }
    }

    /// A backend whose prefix cache persists in the store directory `dir`
    /// (cross-invocation cache persistence, step 2): prefixes persisted by
    /// previous invocations are preloaded, and every fresh miss is flushed
    /// back. The default session capacity applies; campaign-scale callers
    /// should size it with [`SimBackend::with_store_capacity`].
    ///
    /// Opening never fails — a corrupt, version-skewed or unwritable store
    /// degrades to a cold in-memory session, observable through
    /// [`SimBackend::prefix_store`] telemetry.
    pub fn with_store(dir: impl AsRef<std::path::Path>) -> SimBackend {
        SimBackend::with_store_capacity(dir, CompileSession::DEFAULT_CAPACITY)
    }

    /// [`SimBackend::with_store`] with an explicit key budget (use
    /// `CampaignConfig::prefix_key_bound()` for campaign-scale runs): up to
    /// `capacity` store entries preload — the session's eviction headroom
    /// is composed *on top* of the budget, so a store holding exactly the
    /// campaign's key count still warm-starts with zero misses — and the
    /// store decodes modules only up to that budget, so opening over a
    /// store grown far beyond it stays cheap.
    pub fn with_store_capacity(
        dir: impl AsRef<std::path::Path>,
        capacity: usize,
    ) -> SimBackend {
        let store = std::sync::Arc::new(ubfuzz_store::PrefixStore::open_budgeted(
            dir.as_ref(),
            capacity,
        ));
        // The sanitize layer keys (sanitizer, registry epoch) on top of the
        // prefix key, so budget its table at `SAN_VARIANTS ×` the prefix
        // budget — the same ratio the session sizes its own layer by.
        let san_store = std::sync::Arc::new(ubfuzz_store::SanitizedStore::open_budgeted(
            dir.as_ref(),
            capacity.saturating_mul(CompileSession::SAN_VARIANTS),
        ));
        SimBackend {
            session: CompileSession::with_backings(
                CompileSession::capacity_for_preload(capacity),
                store.clone(),
                Some(san_store.clone()),
            ),
            store: Some(store),
            san_store: Some(san_store),
        }
    }

    /// The underlying compile session.
    pub fn session(&self) -> &CompileSession {
        &self.session
    }

    /// The persistent prefix table, when this backend was opened over a
    /// store ([`SimBackend::with_store`]).
    pub fn prefix_store(&self) -> Option<&ubfuzz_store::PrefixStore> {
        self.store.as_deref()
    }

    /// The persistent sanitize-stage table, when this backend was opened
    /// over a store ([`SimBackend::with_store`]).
    pub fn sanitized_store(&self) -> Option<&ubfuzz_store::SanitizedStore> {
        self.san_store.as_deref()
    }
}

impl CompilerBackend for SimBackend {
    fn name(&self) -> &str {
        "sim"
    }

    fn toolchains(&self) -> Vec<ToolchainDesc> {
        Vendor::ALL
            .into_iter()
            .map(|vendor| {
                let id = CompilerId::dev(vendor);
                ToolchainDesc {
                    id,
                    label: format!("{id} (simulated)"),
                    sanitizers: vendor_sanitizers(vendor),
                }
            })
            .collect()
    }

    fn fingerprint(&self, program: &Program) -> ProgramFingerprint {
        self.session.fingerprint_for(program)
    }

    fn compile(
        &self,
        fp: &ProgramFingerprint,
        program: &Program,
        req: &CompileRequest<'_>,
    ) -> Result<Artifact, CompileError> {
        self.session.compile_fp(fp, program, &req.to_compile_config()).map(Artifact::Sim)
    }

    fn execute(&self, artifact: &Artifact, req: &RunRequest) -> RunOutcome {
        match artifact {
            Artifact::Sim(m) => {
                run_with_config(m, &VmConfig { step_limit: req.step_limit, trace: false }).0
            }
            Artifact::Native(n) => RunResult::Error(format!(
                "SimBackend cannot execute native artifact {}",
                n.binary.display()
            )),
            Artifact::Opaque(o) => RunResult::Error(format!(
                "SimBackend cannot execute foreign opaque artifact {}",
                o.token
            )),
        }
    }

    // `trace_capability`/`trace` are the trait defaults: exact `Site`
    // traces of module-carrying artifacts via the VM tracer — the same
    // `run_traced` the standalone oracle has always used, so trace-based
    // crash-site mapping over this backend is bit-identical to the
    // module-level path (pinned by `trace_matches_run_traced` below).

    fn prefix_cache(&self) -> Option<&dyn PrefixCache> {
        Some(&self.session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;
    use ubfuzz_simcc::Sanitizer;
    use ubfuzz_simcc::defects::DefectRegistry;
    use ubfuzz_simcc::pipeline::{compile, CompileConfig};
    use ubfuzz_simcc::SanPolicy;
    use ubfuzz_simcc::target::OptLevel;
    use ubfuzz_simvm::run_module;

    fn program() -> Program {
        parse("int g[4]; int main(void) { int i = 1; g[i] = 3; return g[i] + g[0]; }").unwrap()
    }

    #[test]
    fn toolchains_are_the_dev_heads_with_the_paper_support_matrix() {
        let backend = SimBackend::new();
        let tc = backend.toolchains();
        assert_eq!(tc.len(), 2);
        assert_eq!(tc[0].id, CompilerId::dev(Vendor::Gcc));
        assert_eq!(tc[1].id, CompilerId::dev(Vendor::Llvm));
        assert!(!tc[0].supports(Sanitizer::Msan), "GCC ships no MSan");
        assert!(tc[1].supports(Sanitizer::Msan));
        for t in &tc {
            assert!(t.supports(Sanitizer::Asan) && t.supports(Sanitizer::Ubsan));
        }
    }

    #[test]
    fn compile_and_execute_match_the_direct_pipeline() {
        let p = program();
        let registry = DefectRegistry::full();
        let backend = SimBackend::new();
        let fp = backend.fingerprint(&p);
        for vendor in Vendor::ALL {
            for opt in OptLevel::ALL {
                for sanitizer in [None, Some(Sanitizer::Asan), Some(Sanitizer::Msan)] {
                    let req = CompileRequest {
                        compiler: CompilerId::dev(vendor),
                        opt,
                        sanitizer,
                        registry: &registry,
                        san_policy: SanPolicy::Full,
                    };
                    let direct = compile(
                        &p,
                        &CompileConfig {
                            compiler: req.compiler,
                            opt,
                            sanitizer,
                            registry: &registry,
                            san_policy: SanPolicy::Full,
                        },
                    );
                    match (direct, backend.compile(&fp, &p, &req)) {
                        (Ok(m), Ok(a)) => {
                            assert_eq!(Some(&m), a.module(), "{vendor} {opt} {sanitizer:?}");
                            assert_eq!(
                                run_module(&m),
                                backend.execute(&a, &RunRequest::default()),
                                "{vendor} {opt} {sanitizer:?}"
                            );
                        }
                        (Err(_), Err(_)) => {}
                        (d, b) => panic!("outcome mismatch: {d:?} vs {b:?}"),
                    }
                }
            }
        }
        let stats = backend.prefix_cache().expect("sim caches").stats();
        assert!(stats.hits > 0, "matrix shares prefixes: {stats:?}");
    }

    #[test]
    fn uncached_backend_reports_a_disabled_cache() {
        let backend = SimBackend::uncached();
        let cache = backend.prefix_cache().expect("capability still exposed");
        assert!(!cache.enabled());
        let p = program();
        let registry = DefectRegistry::full();
        let req = CompileRequest {
            compiler: CompilerId::dev(Vendor::Llvm),
            opt: OptLevel::O2,
            sanitizer: Some(Sanitizer::Asan),
            registry: &registry,
            san_policy: SanPolicy::Full,
        };
        let a = backend.compile_program(&p, &req).unwrap();
        assert!(a.module().is_some());
        assert_eq!(cache.stats(), Default::default(), "pass-through records nothing");
    }

    #[test]
    fn store_backed_backend_is_warm_on_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "ubfuzz-simbackend-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let p = program();
        let registry = DefectRegistry::full();
        let req = CompileRequest {
            compiler: CompilerId::dev(Vendor::Llvm),
            opt: OptLevel::O2,
            sanitizer: Some(Sanitizer::Ubsan),
            registry: &registry,
            san_policy: SanPolicy::Full,
        };

        let cold = SimBackend::with_store(&dir);
        let out_cold = cold.compile_program(&p, &req).unwrap();
        assert_eq!(cold.session().stats().misses, 1);
        assert_eq!(cold.prefix_store().expect("store attached").telemetry().persisted(), 1);
        assert_eq!(
            cold.sanitized_store().expect("san store attached").telemetry().persisted(),
            1,
            "sanitized compile persists to the sanitize table too"
        );
        drop(cold);

        let warm = SimBackend::with_store(&dir);
        assert_eq!(warm.session().preloaded(), 1, "reopen preloads the persisted prefix");
        assert_eq!(warm.session().san_preloaded(), 1, "and the persisted sanitize entry");
        let out_warm = warm.compile_program(&p, &req).unwrap();
        assert_eq!(out_cold.module(), out_warm.module(), "store is invisible to outputs");
        // The replay is served by the sanitize layer: the prefix layer is
        // never consulted.
        assert_eq!(warm.session().stats(), ubfuzz_simcc::session::SessionStats {
            hits: 0,
            misses: 0,
            san_hits: 1,
            san_misses: 0
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_matches_run_traced() {
        let p = parse("int a[4]; int i = 9;\nint main(void) {\n    a[i] = 1;\n    return 0;\n}")
            .unwrap();
        let registry = DefectRegistry::pristine();
        let backend = SimBackend::new();
        assert_eq!(backend.trace_capability(), crate::TraceCapability::Site);
        let req = CompileRequest {
            compiler: CompilerId::dev(Vendor::Gcc),
            opt: OptLevel::O0,
            sanitizer: Some(Sanitizer::Asan),
            registry: &registry,
            san_policy: SanPolicy::Full,
        };
        let artifact = backend.compile_program(&p, &req).unwrap();
        let trace = backend.trace(&artifact, &RunRequest::default()).expect("sim traces");
        let (r, reference) = ubfuzz_simvm::run_traced(artifact.module().unwrap());
        assert!(r.is_report());
        assert_eq!(trace.last(), reference.last);
        assert!(!trace.line_granular());
        for loc in &reference.executed {
            assert!(trace.contains_site(*loc));
        }
    }

    #[test]
    fn execute_rejects_foreign_artifacts() {
        let backend = SimBackend::new();
        let native = Artifact::Native(crate::NativeArtifact {
            binary: std::path::PathBuf::from("/nonexistent/ubfuzz-test-bin"),
            compiler: CompilerId::dev(Vendor::Gcc),
            sanitizer: None,
        });
        assert!(matches!(
            backend.execute(&native, &RunRequest::default()),
            RunResult::Error(_)
        ));
    }
}
