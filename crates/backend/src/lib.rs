//! `ubfuzz-backend` — the compilation/execution abstraction the campaign
//! runs against.
//!
//! The UBFuzz loop (generate → compile under many `(compiler, opt,
//! sanitizer)` configs → run → oracle) is compiler-agnostic in the paper:
//! nothing in the testing process cares *how* a binary came to exist, only
//! that the same program can be built under many configurations and each
//! build observed running. This crate captures that seam as
//! [`CompilerBackend`]:
//!
//! * [`SimBackend`] (the default) wraps the deterministic simulated
//!   toolchains of [`ubfuzz_simcc`] and the [`ubfuzz_simvm`] VM — the
//!   defect-injected world every table and figure of the reproduction is
//!   measured in. Campaign output through it is bit-identical to driving
//!   the pipeline directly.
//! * `CcBackend` (behind the `real-toolchain` feature) shells out to actual
//!   gcc/clang found on `$PATH`, mapping [`Sanitizer`] choices to
//!   `-fsanitize=` flags and parsing real sanitizer stderr back into the
//!   same [`RunOutcome`] vocabulary, so the identical campaign can drive
//!   real sanitizer implementations.
//!
//! Staged-compile caching stays a *backend* concern: a backend that can
//! memoize the sanitizer-independent compile prefix exposes it through the
//! [`PrefixCache`] capability trait, and the campaign only ever reads
//! telemetry from it — never the cache itself.
//!
//! The crate is dependency-free beyond the workspace substrate crates
//! (`minic`/`simcc`/`simvm`); in particular the real-toolchain adapter uses
//! only `std::process`.

use std::collections::HashSet;
use std::fmt;
use ubfuzz_minic::{Loc, Program};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::lower::CompileError;
use ubfuzz_simcc::pipeline::CompileConfig;
use ubfuzz_simcc::session::{CompileSession, ProgramFingerprint, SessionStats};
use ubfuzz_simcc::target::{CompilerId, OptLevel};
use ubfuzz_simcc::{Module, Sanitizer};
use ubfuzz_simvm::{RunResult, VmConfig};

#[cfg(feature = "real-toolchain")]
pub mod cc;
pub mod sim;

#[cfg(feature = "real-toolchain")]
pub use cc::CcBackend;
pub use sim::SimBackend;

/// What executing an artifact produced. The campaign's oracle vocabulary is
/// exactly the simulated VM's result shape — real-toolchain backends parse
/// sanitizer stderr into it.
pub type RunOutcome = RunResult;

/// One toolchain a backend can compile with: the identity the campaign
/// differentials over, plus the sanitizers that toolchain ships.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolchainDesc {
    /// Compiler identity (vendor + version).
    pub id: CompilerId,
    /// Human-readable description, e.g. `"GCC-14 (simulated)"` or
    /// `"gcc 12 (/usr/bin/gcc)"`.
    pub label: String,
    /// The sanitizers this toolchain supports (GCC famously ships no MSan).
    pub sanitizers: Vec<Sanitizer>,
}

impl ToolchainDesc {
    /// Whether this toolchain ships `sanitizer`.
    pub fn supports(&self, sanitizer: Sanitizer) -> bool {
        self.sanitizers.contains(&sanitizer)
    }
}

/// The sanitizers a vendor's toolchain ships (paper §4.1: GCC has no MSan
/// — true of the simulated pipelines and of the real drivers alike, so
/// both backends share this one matrix).
pub fn vendor_sanitizers(vendor: ubfuzz_simcc::target::Vendor) -> Vec<Sanitizer> {
    use ubfuzz_simcc::target::Vendor;
    match vendor {
        Vendor::Gcc => vec![Sanitizer::Asan, Sanitizer::Ubsan],
        Vendor::Llvm => vec![Sanitizer::Asan, Sanitizer::Ubsan, Sanitizer::Msan],
    }
}

/// One compile request: the `(compiler, opt, sanitizer)` cell of the test
/// matrix plus the defect world under test (ignored by backends whose
/// defects are, unfortunately, real).
#[derive(Debug, Clone)]
pub struct CompileRequest<'a> {
    /// Which compiler.
    pub compiler: CompilerId,
    /// Optimization level.
    pub opt: OptLevel,
    /// Sanitizer to enable, if any (`-fsanitize=`).
    pub sanitizer: Option<Sanitizer>,
    /// The injected-defect world (meaningful to simulated backends only).
    pub registry: &'a DefectRegistry,
    /// Partial-sanitization policy for this cell
    /// ([`ubfuzz_simcc::partition::SanPolicy::Full`] is the bit-identical
    /// default).
    pub san_policy: ubfuzz_simcc::partition::SanPolicy,
}

impl<'a> CompileRequest<'a> {
    /// The equivalent simulated-pipeline configuration.
    pub fn to_compile_config(&self) -> CompileConfig<'a> {
        CompileConfig {
            compiler: self.compiler,
            opt: self.opt,
            sanitizer: self.sanitizer,
            registry: self.registry,
            san_policy: self.san_policy,
        }
    }
}

/// Execution limits for [`CompilerBackend::execute`].
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Maximum executed instructions (simulated backends) or a wall-clock
    /// budget derived from it (real backends).
    pub step_limit: u64,
}

impl Default for RunRequest {
    fn default() -> RunRequest {
        RunRequest { step_limit: ubfuzz_simvm::VmConfig::default().step_limit }
    }
}

/// A compiled program, ready to execute.
///
/// Simulated backends carry the full [`Module`] — which is what lets the
/// campaign's oracle run crash-site mapping and defect attribution over it.
/// Real-toolchain artifacts are opaque binaries on disk; campaigns over
/// them cannot attribute discrepancies to injected defects (there are none
/// to attribute to), but a trace-capable backend
/// ([`CompilerBackend::trace`]) still lets the oracle *arbitrate* them.
#[derive(Debug)]
pub enum Artifact {
    /// Simulated-pipeline output.
    Sim(Module),
    /// Real-toolchain output: a binary on disk.
    Native(NativeArtifact),
    /// A backend-private artifact addressed by token: the owning backend
    /// knows how to execute (and possibly trace) it, but it exposes no
    /// module for source-level attribution. In-memory native backends and
    /// module-less test doubles take this shape.
    Opaque(OpaqueArtifact),
}

impl Artifact {
    /// The compiled module, when this artifact has one (simulated backends).
    pub fn module(&self) -> Option<&Module> {
        match self {
            Artifact::Sim(m) => Some(m),
            Artifact::Native(_) | Artifact::Opaque(_) => None,
        }
    }
}

/// A backend-private build product (see [`Artifact::Opaque`]). The token is
/// only meaningful to the backend that issued it.
#[derive(Debug, Clone)]
pub struct OpaqueArtifact {
    /// Backend-private handle.
    pub token: u64,
    /// The compiler that built it.
    pub compiler: CompilerId,
    /// The sanitizer it was instrumented with, if any.
    pub sanitizer: Option<Sanitizer>,
}

/// A real-toolchain build product. The binary is deleted when the artifact
/// is dropped, so campaign-scale fan-out cannot litter the filesystem.
#[derive(Debug)]
pub struct NativeArtifact {
    /// Path of the compiled binary.
    pub binary: std::path::PathBuf,
    /// The compiler that built it.
    pub compiler: CompilerId,
    /// The sanitizer it was instrumented with, if any.
    pub sanitizer: Option<Sanitizer>,
}

impl Drop for NativeArtifact {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.binary);
    }
}

/// How precisely a backend can report executed sites
/// ([`CompilerBackend::trace`]) — the oracle compares crash sites at the
/// coarsest granularity either side of a pair offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceCapability {
    /// The backend cannot trace execution at all: module-less discrepancies
    /// stay unarbitrated.
    None,
    /// Line-granular traces — what single-stepping a `-g` binary under a
    /// debugger recovers (the paper's LLDB mechanism).
    Line,
    /// Exact `(line, offset)` instruction traces — the simulated VM's
    /// tracer.
    Site,
}

/// Executed-site trace of one run (Algorithm 2's `GetExecutedSites`),
/// backend-agnostic: site-granular when produced by the simulated VM,
/// line-granular when recovered from a native binary's debug info.
#[derive(Debug, Clone, Default)]
pub struct SiteTrace {
    /// Distinct executed `(line, offset)` sites (site-granular traces only).
    executed: HashSet<Loc>,
    /// Distinct executed lines (always populated).
    lines: HashSet<u32>,
    /// The last executed site — the crash site when the run crashed. For
    /// line-granular traces the offset is 0.
    last: Loc,
    /// True when only line numbers are trustworthy.
    line_granular: bool,
}

impl SiteTrace {
    /// Wraps the simulated VM's instruction trace (site-granular).
    pub fn from_vm(trace: ubfuzz_simvm::Trace) -> SiteTrace {
        let lines = trace.executed.iter().map(|l| l.line).collect();
        SiteTrace { executed: trace.executed, lines, last: trace.last, line_granular: false }
    }

    /// A line-granular trace from executed line numbers in execution order
    /// (the last element is the crash line of a crashing run).
    pub fn from_lines(lines_in_order: Vec<u32>) -> SiteTrace {
        let last = lines_in_order.last().map_or(Loc::UNKNOWN, |&l| Loc::new(l, 0));
        SiteTrace {
            executed: HashSet::new(),
            lines: lines_in_order.into_iter().collect(),
            last,
            line_granular: true,
        }
    }

    /// The last executed site (Definition 2's crash site on a crashing run).
    pub fn last(&self) -> Loc {
        self.last
    }

    /// Whether the exact `(line, offset)` site was executed. Only
    /// meaningful on site-granular traces; line-granular ones answer
    /// through [`SiteTrace::contains_line`].
    pub fn contains_site(&self, site: Loc) -> bool {
        self.executed.contains(&site)
    }

    /// Whether any instruction on `line` was executed.
    pub fn contains_line(&self, line: u32) -> bool {
        self.lines.contains(&line)
    }

    /// True when only line numbers are trustworthy (native debug-info
    /// traces).
    pub fn line_granular(&self) -> bool {
        self.line_granular
    }

    /// Number of distinct executed lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }
}

/// Capability trait for backends with a staged-compile cache: the campaign
/// reads telemetry through it but never manages the cache itself —
/// memoization policy (keying, eviction, epochs) stays a backend concern.
pub trait PrefixCache: Send + Sync {
    /// Whether caching is enabled (a disabled cache passes through).
    fn enabled(&self) -> bool;
    /// Hit/miss counters so far. Monotone; campaigns snapshot before/after
    /// a run and report the delta, so one cache can persist across runs.
    fn stats(&self) -> SessionStats;
}

impl PrefixCache for CompileSession {
    fn enabled(&self) -> bool {
        CompileSession::enabled(self)
    }

    fn stats(&self) -> SessionStats {
        CompileSession::stats(self)
    }
}

/// A compilation + execution backend the campaign is generic over.
///
/// Implementations must be deterministic functions of their inputs for the
/// campaign's sequential-vs-parallel bit-identity property to hold; interior
/// caching is fine exactly when it is observationally invisible (see
/// [`CompileSession`]).
pub trait CompilerBackend: fmt::Debug + Send + Sync {
    /// Short backend name for logs and reports.
    fn name(&self) -> &str;

    /// The toolchains the campaign should differential over, in a stable
    /// order. [`CompilerBackend::compile`] may additionally accept other
    /// compiler identities (e.g. stable versions for the Fig. 10 replays);
    /// this list is the campaign matrix, not a whitelist.
    fn toolchains(&self) -> Vec<ToolchainDesc>;

    /// An amortizable per-program identity: compute once, pass to every
    /// [`CompilerBackend::compile`] of the program's matrix. Backends
    /// without per-program precomputation return
    /// [`ProgramFingerprint::empty`].
    fn fingerprint(&self, program: &Program) -> ProgramFingerprint {
        let _ = program;
        ProgramFingerprint::empty()
    }

    /// Compiles `program` under `req`.
    ///
    /// # Errors
    ///
    /// Unsupported `(compiler, sanitizer)` combinations and frontend
    /// rejections, mirroring real driver exits.
    fn compile(
        &self,
        fp: &ProgramFingerprint,
        program: &Program,
        req: &CompileRequest<'_>,
    ) -> Result<Artifact, CompileError>;

    /// [`CompilerBackend::compile`] with the fingerprint computed inline —
    /// for one-off compiles outside a matrix sweep.
    fn compile_program(
        &self,
        program: &Program,
        req: &CompileRequest<'_>,
    ) -> Result<Artifact, CompileError> {
        self.compile(&self.fingerprint(program), program, req)
    }

    /// Executes a compiled artifact and classifies the outcome.
    fn execute(&self, artifact: &Artifact, req: &RunRequest) -> RunOutcome;

    /// How precisely [`CompilerBackend::trace`] can report executed sites.
    /// The default matches the default `trace`: module-carrying artifacts
    /// replay on the simulated VM's exact instruction tracer.
    fn trace_capability(&self) -> TraceCapability {
        TraceCapability::Site
    }

    /// Executes `artifact` recording its executed sites — Algorithm 2's
    /// `GetExecutedSites`, the capability the crash-site-mapping oracle is
    /// built on. `None` when this artifact cannot be traced (the oracle
    /// then accounts the discrepancy as unarbitratable instead of silently
    /// dropping it).
    ///
    /// The default implementation traces module-carrying artifacts through
    /// the simulated VM and returns `None` for anything else; backends over
    /// opaque artifacts override it (e.g. `CcBackend`'s debugger trace).
    fn trace(&self, artifact: &Artifact, req: &RunRequest) -> Option<SiteTrace> {
        artifact.module().map(|m| {
            let (_, trace) =
                ubfuzz_simvm::run_with_config(m, &VmConfig { step_limit: req.step_limit, trace: true });
            SiteTrace::from_vm(trace)
        })
    }

    /// The backend's staged-compile cache, when it has one.
    fn prefix_cache(&self) -> Option<&dyn PrefixCache> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toolchain_desc_supports() {
        let desc = ToolchainDesc {
            id: CompilerId::dev(ubfuzz_simcc::target::Vendor::Gcc),
            label: "GCC-14 (simulated)".into(),
            sanitizers: vec![Sanitizer::Asan, Sanitizer::Ubsan],
        };
        assert!(desc.supports(Sanitizer::Asan));
        assert!(!desc.supports(Sanitizer::Msan));
    }

    #[test]
    fn run_request_defaults_match_the_vm() {
        assert_eq!(
            RunRequest::default().step_limit,
            ubfuzz_simvm::VmConfig::default().step_limit
        );
    }

    #[test]
    fn site_trace_granularity_membership() {
        let mut vm = ubfuzz_simvm::Trace::default();
        vm.executed.insert(Loc::new(3, 4));
        vm.executed.insert(Loc::new(5, 0));
        vm.last = Loc::new(5, 0);
        let site = SiteTrace::from_vm(vm);
        assert!(!site.line_granular());
        assert!(site.contains_site(Loc::new(3, 4)));
        assert!(!site.contains_site(Loc::new(3, 0)));
        assert!(site.contains_line(3));
        assert_eq!(site.last(), Loc::new(5, 0));
        assert_eq!(site.line_count(), 2);

        let line = SiteTrace::from_lines(vec![2, 3, 3, 7]);
        assert!(line.line_granular());
        assert!(line.contains_line(3));
        assert!(!line.contains_line(4));
        assert!(!line.contains_site(Loc::new(3, 0)), "sites are not trustworthy");
        assert_eq!(line.last(), Loc::new(7, 0));
        assert_eq!(line.line_count(), 3);
        assert_eq!(SiteTrace::from_lines(Vec::new()).last(), Loc::UNKNOWN);
    }

    #[test]
    fn opaque_artifacts_expose_no_module() {
        let a = Artifact::Opaque(OpaqueArtifact {
            token: 7,
            compiler: CompilerId::dev(ubfuzz_simcc::target::Vendor::Gcc),
            sanitizer: Some(Sanitizer::Asan),
        });
        assert!(a.module().is_none());
    }

    #[test]
    fn default_trace_covers_module_artifacts_only() {
        #[derive(Debug)]
        struct Fixed(Module);
        impl CompilerBackend for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn toolchains(&self) -> Vec<ToolchainDesc> {
                Vec::new()
            }
            fn compile(
                &self,
                _fp: &ProgramFingerprint,
                _program: &Program,
                _req: &CompileRequest<'_>,
            ) -> Result<Artifact, CompileError> {
                Ok(Artifact::Sim(self.0.clone()))
            }
            fn execute(&self, artifact: &Artifact, _req: &RunRequest) -> RunOutcome {
                ubfuzz_simvm::run_module(artifact.module().expect("sim artifact"))
            }
        }

        let p = ubfuzz_minic::parse(
            "int a[4]; int i = 9;\nint main(void) {\n    a[i] = 1;\n    return 0;\n}",
        )
        .unwrap();
        let reg = DefectRegistry::pristine();
        let m = ubfuzz_simcc::pipeline::compile(
            &p,
            &ubfuzz_simcc::pipeline::CompileConfig::dev(
                ubfuzz_simcc::target::Vendor::Gcc,
                OptLevel::O0,
                Some(Sanitizer::Asan),
                &reg,
            ),
        )
        .unwrap();
        let backend = Fixed(m.clone());
        assert_eq!(backend.trace_capability(), TraceCapability::Site);
        let artifact = Artifact::Sim(m.clone());
        let trace = backend.trace(&artifact, &RunRequest::default()).expect("sim traces");
        let (_, reference) = ubfuzz_simvm::run_traced(&m);
        assert_eq!(trace.last(), reference.last, "crash site matches run_traced");
        assert!(trace.contains_site(reference.last));
        let native = Artifact::Native(NativeArtifact {
            binary: std::path::PathBuf::from("/nonexistent/ubfuzz-trace-test"),
            compiler: CompilerId::dev(ubfuzz_simcc::target::Vendor::Gcc),
            sanitizer: None,
        });
        assert!(backend.trace(&native, &RunRequest::default()).is_none());
    }

    #[test]
    fn native_artifact_drop_removes_binary() {
        let path = std::env::temp_dir().join(format!(
            "ubfuzz-backend-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, b"not a real binary").unwrap();
        assert!(path.exists());
        drop(NativeArtifact {
            binary: path.clone(),
            compiler: CompilerId::dev(ubfuzz_simcc::target::Vendor::Gcc),
            sanitizer: None,
        });
        assert!(!path.exists());
    }
}
