//! `ubfuzz-backend` — the compilation/execution abstraction the campaign
//! runs against.
//!
//! The UBFuzz loop (generate → compile under many `(compiler, opt,
//! sanitizer)` configs → run → oracle) is compiler-agnostic in the paper:
//! nothing in the testing process cares *how* a binary came to exist, only
//! that the same program can be built under many configurations and each
//! build observed running. This crate captures that seam as
//! [`CompilerBackend`]:
//!
//! * [`SimBackend`] (the default) wraps the deterministic simulated
//!   toolchains of [`ubfuzz_simcc`] and the [`ubfuzz_simvm`] VM — the
//!   defect-injected world every table and figure of the reproduction is
//!   measured in. Campaign output through it is bit-identical to driving
//!   the pipeline directly.
//! * `CcBackend` (behind the `real-toolchain` feature) shells out to actual
//!   gcc/clang found on `$PATH`, mapping [`Sanitizer`] choices to
//!   `-fsanitize=` flags and parsing real sanitizer stderr back into the
//!   same [`RunOutcome`] vocabulary, so the identical campaign can drive
//!   real sanitizer implementations.
//!
//! Staged-compile caching stays a *backend* concern: a backend that can
//! memoize the sanitizer-independent compile prefix exposes it through the
//! [`PrefixCache`] capability trait, and the campaign only ever reads
//! telemetry from it — never the cache itself.
//!
//! The crate is dependency-free beyond the workspace substrate crates
//! (`minic`/`simcc`/`simvm`); in particular the real-toolchain adapter uses
//! only `std::process`.

use std::fmt;
use ubfuzz_minic::Program;
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::lower::CompileError;
use ubfuzz_simcc::pipeline::CompileConfig;
use ubfuzz_simcc::session::{CompileSession, ProgramFingerprint, SessionStats};
use ubfuzz_simcc::target::{CompilerId, OptLevel};
use ubfuzz_simcc::{Module, Sanitizer};
use ubfuzz_simvm::RunResult;

#[cfg(feature = "real-toolchain")]
pub mod cc;
pub mod sim;

#[cfg(feature = "real-toolchain")]
pub use cc::CcBackend;
pub use sim::SimBackend;

/// What executing an artifact produced. The campaign's oracle vocabulary is
/// exactly the simulated VM's result shape — real-toolchain backends parse
/// sanitizer stderr into it.
pub type RunOutcome = RunResult;

/// One toolchain a backend can compile with: the identity the campaign
/// differentials over, plus the sanitizers that toolchain ships.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolchainDesc {
    /// Compiler identity (vendor + version).
    pub id: CompilerId,
    /// Human-readable description, e.g. `"GCC-14 (simulated)"` or
    /// `"gcc 12 (/usr/bin/gcc)"`.
    pub label: String,
    /// The sanitizers this toolchain supports (GCC famously ships no MSan).
    pub sanitizers: Vec<Sanitizer>,
}

impl ToolchainDesc {
    /// Whether this toolchain ships `sanitizer`.
    pub fn supports(&self, sanitizer: Sanitizer) -> bool {
        self.sanitizers.contains(&sanitizer)
    }
}

/// The sanitizers a vendor's toolchain ships (paper §4.1: GCC has no MSan
/// — true of the simulated pipelines and of the real drivers alike, so
/// both backends share this one matrix).
pub fn vendor_sanitizers(vendor: ubfuzz_simcc::target::Vendor) -> Vec<Sanitizer> {
    use ubfuzz_simcc::target::Vendor;
    match vendor {
        Vendor::Gcc => vec![Sanitizer::Asan, Sanitizer::Ubsan],
        Vendor::Llvm => vec![Sanitizer::Asan, Sanitizer::Ubsan, Sanitizer::Msan],
    }
}

/// One compile request: the `(compiler, opt, sanitizer)` cell of the test
/// matrix plus the defect world under test (ignored by backends whose
/// defects are, unfortunately, real).
#[derive(Debug, Clone)]
pub struct CompileRequest<'a> {
    /// Which compiler.
    pub compiler: CompilerId,
    /// Optimization level.
    pub opt: OptLevel,
    /// Sanitizer to enable, if any (`-fsanitize=`).
    pub sanitizer: Option<Sanitizer>,
    /// The injected-defect world (meaningful to simulated backends only).
    pub registry: &'a DefectRegistry,
}

impl<'a> CompileRequest<'a> {
    /// The equivalent simulated-pipeline configuration.
    pub fn to_compile_config(&self) -> CompileConfig<'a> {
        CompileConfig {
            compiler: self.compiler,
            opt: self.opt,
            sanitizer: self.sanitizer,
            registry: self.registry,
        }
    }
}

/// Execution limits for [`CompilerBackend::execute`].
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Maximum executed instructions (simulated backends) or a wall-clock
    /// budget derived from it (real backends).
    pub step_limit: u64,
}

impl Default for RunRequest {
    fn default() -> RunRequest {
        RunRequest { step_limit: ubfuzz_simvm::VmConfig::default().step_limit }
    }
}

/// A compiled program, ready to execute.
///
/// Simulated backends carry the full [`Module`] — which is what lets the
/// campaign's oracle run crash-site mapping and defect attribution over it.
/// Real-toolchain artifacts are opaque binaries on disk; campaigns over
/// them still count discrepancies but cannot attribute to injected defects
/// (there are none to attribute to).
#[derive(Debug)]
pub enum Artifact {
    /// Simulated-pipeline output.
    Sim(Module),
    /// Real-toolchain output: a binary on disk.
    Native(NativeArtifact),
}

impl Artifact {
    /// The compiled module, when this artifact has one (simulated backends).
    pub fn module(&self) -> Option<&Module> {
        match self {
            Artifact::Sim(m) => Some(m),
            Artifact::Native(_) => None,
        }
    }
}

/// A real-toolchain build product. The binary is deleted when the artifact
/// is dropped, so campaign-scale fan-out cannot litter the filesystem.
#[derive(Debug)]
pub struct NativeArtifact {
    /// Path of the compiled binary.
    pub binary: std::path::PathBuf,
    /// The compiler that built it.
    pub compiler: CompilerId,
    /// The sanitizer it was instrumented with, if any.
    pub sanitizer: Option<Sanitizer>,
}

impl Drop for NativeArtifact {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.binary);
    }
}

/// Capability trait for backends with a staged-compile cache: the campaign
/// reads telemetry through it but never manages the cache itself —
/// memoization policy (keying, eviction, epochs) stays a backend concern.
pub trait PrefixCache: Send + Sync {
    /// Whether caching is enabled (a disabled cache passes through).
    fn enabled(&self) -> bool;
    /// Hit/miss counters so far. Monotone; campaigns snapshot before/after
    /// a run and report the delta, so one cache can persist across runs.
    fn stats(&self) -> SessionStats;
}

impl PrefixCache for CompileSession {
    fn enabled(&self) -> bool {
        CompileSession::enabled(self)
    }

    fn stats(&self) -> SessionStats {
        CompileSession::stats(self)
    }
}

/// A compilation + execution backend the campaign is generic over.
///
/// Implementations must be deterministic functions of their inputs for the
/// campaign's sequential-vs-parallel bit-identity property to hold; interior
/// caching is fine exactly when it is observationally invisible (see
/// [`CompileSession`]).
pub trait CompilerBackend: fmt::Debug + Send + Sync {
    /// Short backend name for logs and reports.
    fn name(&self) -> &str;

    /// The toolchains the campaign should differential over, in a stable
    /// order. [`CompilerBackend::compile`] may additionally accept other
    /// compiler identities (e.g. stable versions for the Fig. 10 replays);
    /// this list is the campaign matrix, not a whitelist.
    fn toolchains(&self) -> Vec<ToolchainDesc>;

    /// An amortizable per-program identity: compute once, pass to every
    /// [`CompilerBackend::compile`] of the program's matrix. Backends
    /// without per-program precomputation return
    /// [`ProgramFingerprint::empty`].
    fn fingerprint(&self, program: &Program) -> ProgramFingerprint {
        let _ = program;
        ProgramFingerprint::empty()
    }

    /// Compiles `program` under `req`.
    ///
    /// # Errors
    ///
    /// Unsupported `(compiler, sanitizer)` combinations and frontend
    /// rejections, mirroring real driver exits.
    fn compile(
        &self,
        fp: &ProgramFingerprint,
        program: &Program,
        req: &CompileRequest<'_>,
    ) -> Result<Artifact, CompileError>;

    /// [`CompilerBackend::compile`] with the fingerprint computed inline —
    /// for one-off compiles outside a matrix sweep.
    fn compile_program(
        &self,
        program: &Program,
        req: &CompileRequest<'_>,
    ) -> Result<Artifact, CompileError> {
        self.compile(&self.fingerprint(program), program, req)
    }

    /// Executes a compiled artifact and classifies the outcome.
    fn execute(&self, artifact: &Artifact, req: &RunRequest) -> RunOutcome;

    /// The backend's staged-compile cache, when it has one.
    fn prefix_cache(&self) -> Option<&dyn PrefixCache> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toolchain_desc_supports() {
        let desc = ToolchainDesc {
            id: CompilerId::dev(ubfuzz_simcc::target::Vendor::Gcc),
            label: "GCC-14 (simulated)".into(),
            sanitizers: vec![Sanitizer::Asan, Sanitizer::Ubsan],
        };
        assert!(desc.supports(Sanitizer::Asan));
        assert!(!desc.supports(Sanitizer::Msan));
    }

    #[test]
    fn run_request_defaults_match_the_vm() {
        assert_eq!(
            RunRequest::default().step_limit,
            ubfuzz_simvm::VmConfig::default().step_limit
        );
    }

    #[test]
    fn native_artifact_drop_removes_binary() {
        let path = std::env::temp_dir().join(format!(
            "ubfuzz-backend-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, b"not a real binary").unwrap();
        assert!(path.exists());
        drop(NativeArtifact {
            binary: path.clone(),
            compiler: CompilerId::dev(ubfuzz_simcc::target::Vendor::Gcc),
            sanitizer: None,
        });
        assert!(!path.exists());
    }
}
