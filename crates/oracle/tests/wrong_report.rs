//! Property: the wrong-report stage never flags a report at a line *after*
//! the UB site (the dead-UB-removed case, where the optimizer deleted a
//! dead UB access and the sanitizer then correctly blames the next one),
//! across the full vendor × version × optimization matrix.
//!
//! Kept small-cased: every case compiles generated UB programs under every
//! stable and development compiler version at every level.

use proptest::prelude::*;
use ubfuzz_backend::{Artifact, CompileRequest, CompilerBackend, SimBackend};
use ubfuzz_oracle::{CompiledCell, CrashOracle, OracleInput, OracleStack};
use ubfuzz_seedgen::{generate_seed, SeedOptions};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::san;
use ubfuzz_simcc::SanPolicy;
use ubfuzz_simcc::target::{CompilerId, OptLevel, Vendor};
use ubfuzz_ubgen::{generate_all, GenOptions};

/// Every `(vendor, version, opt)` cell the reproduction knows: all stable
/// versions plus the development head, at every level.
fn full_matrix() -> Vec<(CompilerId, OptLevel)> {
    let mut out = Vec::new();
    for vendor in Vendor::ALL {
        let versions: Vec<u32> =
            vendor.stable_versions().chain([CompilerId::dev(vendor).version]).collect();
        for version in versions {
            for opt in OptLevel::ALL {
                out.push((CompilerId { vendor, version }, opt));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]

    #[test]
    fn wrong_reports_are_never_after_the_ub_site(seed_id in 0u64..200) {
        let seed = generate_seed(seed_id, &SeedOptions {
            max_helpers: 1,
            max_globals: 5,
            max_stmts: 4,
            max_depth: 2,
            ..SeedOptions::default()
        });
        let programs = generate_all(&seed, &GenOptions {
            max_per_kind: 1,
            ..GenOptions::default()
        });
        // The full registry contains the wrong-line defects, so earlier-line
        // (genuinely wrong) reports do occur and the property is not vacuous.
        let registry = DefectRegistry::full();
        let backend = SimBackend::new();
        let stack = OracleStack::standard();
        let matrix = full_matrix();
        for u in programs.iter().take(2) {
            let fp = backend.fingerprint(&u.program);
            for sanitizer in san::sanitizers_for(u.kind) {
                let cells: Vec<CompiledCell> = matrix
                    .iter()
                    .filter_map(|&(compiler, opt)| {
                        let req = CompileRequest {
                            compiler,
                            opt,
                            sanitizer: Some(sanitizer),
                            registry: &registry,
                            san_policy: SanPolicy::Full,
                        };
                        let artifact = backend.compile(&fp, &u.program, &req).ok()?;
                        let outcome = backend.execute(&artifact, &Default::default());
                        Some(CompiledCell { compiler, opt, artifact, outcome })
                    })
                    .collect();
                let verdicts = stack.judge(
                    &backend,
                    OracleInput { sanitizer, ub_kind: u.kind, ub_loc: u.ub_loc },
                    &cells,
                );
                for &i in &verdicts.wrong_reports {
                    let report = cells[i].outcome.report().expect("wrong-report cell reported");
                    prop_assert!(
                        report.loc.line < u.ub_loc.line,
                        "seed {seed_id} {sanitizer} {:?} {}: report at {} flagged as wrong \
                         but the UB site is {} — reports at or after the site are legitimate",
                        cells[i].compiler, cells[i].opt, report.loc, u.ub_loc
                    );
                    prop_assert!(matches!(cells[i].artifact, Artifact::Sim(_)));
                }
            }
        }
    }
}
