//! `ubfuzz-oracle` — crash-site mapping, the paper's test oracle
//! (§3.3, Algorithm 2).
//!
//! Given two binaries compiled from the same program — `b_c` whose sanitizer
//! reported ("crashed") and `b_n` which exited normally — the oracle decides
//! whether the discrepancy is a **sanitizer false-negative bug** or merely
//! **compiler optimization** removing the UB before the sanitizer pass:
//!
//! > If the crash site in `b_c` is also executed by `b_n`, the compiler did
//! > not optimize away the UB-triggering expression, thus the discrepancy is
//! > caused by a sanitizer FN bug.
//!
//! The crash site is the `(line, offset)` of the last executed instruction
//! (Definition 2), recovered here from the VM's trace exactly as the paper
//! recovers it from LLDB plus `-g` debug metadata. The documented soundness
//! caveat (§4.4) applies identically: a legitimate transformation can keep
//! the crash site executable while removing the UB — reproduced by the
//! GCC `-O3` scope-extension case (the paper's one invalid report, Fig. 8).

use ubfuzz_minic::Loc;
use ubfuzz_simcc::Module;
use ubfuzz_simvm::{run_traced, RunResult, Trace};

/// Verdict for one `(crashing, non-crashing)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The crash site is executed by the non-crashing binary: a sanitizer
    /// false-negative bug (Algorithm 2 returns *true*).
    SanitizerBug,
    /// The crash site is gone from the non-crashing binary: the optimizer
    /// removed the UB (Algorithm 2 returns *false*).
    OptimizationArtifact,
}

/// Everything the oracle derived from one pair of binaries.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// The verdict.
    pub verdict: Verdict,
    /// The crash site extracted from `b_c` (Definition 2).
    pub crash_site: Loc,
    /// How `b_c` terminated.
    pub crashing_result: RunResult,
    /// How `b_n` terminated.
    pub normal_result: RunResult,
}

/// Algorithm 2 (`IsBug`): runs both binaries under the tracer, extracts the
/// crash site of `bc`, and checks whether `bn` executes it.
///
/// Returns `None` when the premise does not hold (i.e. `bc` did not produce
/// a sanitizer report or `bn` did not exit normally) — callers establish the
/// discrepancy before invoking the oracle.
pub fn crash_site_mapping(bc: &Module, bn: &Module) -> Option<MappingResult> {
    let (rc, tc) = run_traced(bc);
    if !rc.is_report() {
        return None;
    }
    let (rn, tn) = run_traced(bn);
    if !rn.is_normal_exit() {
        return None;
    }
    let crash_site = tc.last;
    let verdict = if tn.contains(crash_site) {
        Verdict::SanitizerBug
    } else {
        Verdict::OptimizationArtifact
    };
    Some(MappingResult { verdict, crash_site, crashing_result: rc, normal_result: rn })
}

/// `GetExecutedSites` (Algorithm 2, lines 8–16) as a standalone helper.
pub fn executed_sites(b: &Module) -> (RunResult, Trace) {
    run_traced(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_minic::parse;
    use ubfuzz_simcc::defects::DefectRegistry;
    use ubfuzz_simcc::pipeline::{compile, CompileConfig};
    use ubfuzz_simcc::target::{OptLevel, Vendor};
    use ubfuzz_simcc::Sanitizer;

    #[test]
    fn flags_defect_caused_discrepancy_as_bug() {
        // Fig. 1 world: the -O2 miss is a sanitizer bug; the crash site (the
        // dereference) is still executed at -O2.
        let reg = DefectRegistry::full();
        let src = "
            struct a { int x; };
            struct a b[2];
            struct a *c = b;
            struct a *d = b;
            int k = 0;
            int main(void) {
                c->x = b[0].x;
                k = 2;
                c->x = (d + k)->x;
                return c->x;
            }
        ";
        let p = parse(src).unwrap();
        let bc = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &reg),
        )
        .unwrap();
        let bn = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &reg),
        )
        .unwrap();
        let r = crash_site_mapping(&bc, &bn).expect("premise holds");
        assert_eq!(r.verdict, Verdict::SanitizerBug);
        assert!(r.crash_site.is_known());
    }

    #[test]
    fn flags_optimized_away_ub_as_artifact() {
        // Fig. 3 world: the UB store is dead and removed by -O2 before the
        // sanitizer pass; no instruction at the crash site survives.
        let reg = DefectRegistry::pristine();
        let src = "
            int g;
            int main(void) {
                int d[2];
                int i = 2;
                d[i] = 1;
                g = 7;
                print_value(g);
                return 0;
            }
        ";
        let p = parse(src).unwrap();
        let bc = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &reg),
        )
        .unwrap();
        let bn = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &reg),
        )
        .unwrap();
        let r = crash_site_mapping(&bc, &bn).expect("premise holds");
        assert_eq!(r.verdict, Verdict::OptimizationArtifact);
    }

    #[test]
    fn premise_violations_return_none() {
        let reg = DefectRegistry::pristine();
        let p = parse("int main(void) { return 0; }").unwrap();
        let m = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &reg),
        )
        .unwrap();
        assert!(crash_site_mapping(&m, &m).is_none(), "no crash on either side");
    }

    #[test]
    fn pristine_world_pairs_are_never_bugs() {
        // With correct sanitizers, any discrepancy across levels must be an
        // optimization artifact — the oracle's precision property (§4.4).
        let reg = DefectRegistry::pristine();
        let src = "
            int g;
            int main(void) {
                int dead[4];
                int j = 5;
                dead[j] = 3;
                g = 1;
                print_value(g);
                return 0;
            }
        ";
        let p = parse(src).unwrap();
        for vendor in Vendor::ALL {
            let bc = compile(
                &p,
                &CompileConfig::dev(vendor, OptLevel::O0, Some(Sanitizer::Asan), &reg),
            )
            .unwrap();
            for opt in [OptLevel::O1, OptLevel::Os, OptLevel::O2, OptLevel::O3] {
                let bn = compile(
                    &p,
                    &CompileConfig::dev(vendor, opt, Some(Sanitizer::Asan), &reg),
                )
                .unwrap();
                if let Some(r) = crash_site_mapping(&bc, &bn) {
                    assert_eq!(
                        r.verdict,
                        Verdict::OptimizationArtifact,
                        "{vendor} {opt}: pristine sanitizers have no FN bugs"
                    );
                }
            }
        }
    }
}
