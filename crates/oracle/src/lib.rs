//! `ubfuzz-oracle` — the test oracle (paper §3.3, Algorithm 2), redesigned
//! as a pluggable, backend-agnostic API.
//!
//! Given a program's compiled test matrix for one sanitizer — some cells
//! "crashed" (the sanitizer reported), some exited normally — the oracle
//! decides whether each discrepancy is a **sanitizer false-negative bug**
//! or merely **compiler optimization** removing the UB before the sanitizer
//! pass:
//!
//! > If the crash site in `b_c` is also executed by `b_n`, the compiler did
//! > not optimize away the UB-triggering expression, thus the discrepancy is
//! > caused by a sanitizer FN bug.
//!
//! The crash site is the `(line, offset)` of the last executed instruction
//! (Definition 2). It is recovered from a [`SiteTrace`] produced by the
//! backend under test: the simulated VM's exact instruction tracer, or a
//! line-granular debugger trace of a real `-g` binary — exactly as the
//! paper recovers it from LLDB plus debug metadata. The documented
//! soundness caveat (§4.4) applies identically: a legitimate transformation
//! can keep the crash site executable while removing the UB — reproduced by
//! the GCC `-O3` scope-extension case (the paper's one invalid report,
//! Fig. 8).
//!
//! # Architecture
//!
//! * [`CrashOracle`] is the campaign-facing seam: `judge(backend, input,
//!   cells)` over one program's [`CompiledCell`] matrix.
//! * [`OracleStack`] is the standard implementation — an ordered list of
//!   [`OracleStage`]s sharing a [`StageContext`] and accumulating
//!   [`OracleVerdicts`]. The default stack is
//!   [`WrongReportDetection`] → [`DiscrepancyAccounting`] →
//!   [`CrashSiteMapping`] → [`PartialSanAwareness`]; the §4.4 ablation
//!   swaps the mapping stage for [`NaiveSelection`] instead of forking
//!   campaign code.
//! * [`trace_artifact`] and [`arbitrate`] are the pair-level primitives the
//!   stack is built from, usable standalone (the examples and the detector
//!   campaigns do). They subsume the pre-redesign module-only free
//!   functions, which have been removed.

use std::fmt;
use std::sync::Arc;
use ubfuzz_backend::{Artifact, CompilerBackend, RunOutcome, RunRequest, SiteTrace, TraceCapability};
use ubfuzz_minic::{Loc, UbKind};
use ubfuzz_simcc::target::{CompilerId, OptLevel};
use ubfuzz_simcc::Sanitizer;

/// Verdict for one `(crashing, non-crashing)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The crash site is executed by the non-crashing binary: a sanitizer
    /// false-negative bug (Algorithm 2 returns *true*).
    SanitizerBug,
    /// The crash site is gone from the non-crashing binary: the optimizer
    /// removed the UB (Algorithm 2 returns *false*).
    OptimizationArtifact,
}

/// One compiled cell of a program's test matrix for one sanitizer: the
/// `(compiler, opt)` identity, the build product, and how it ran. The
/// campaign executor assembles these; the oracle consumes them.
#[derive(Debug)]
pub struct CompiledCell {
    /// Compiler identity of this cell.
    pub compiler: CompilerId,
    /// Optimization level of this cell.
    pub opt: OptLevel,
    /// The build product (module-carrying or opaque).
    pub artifact: Artifact,
    /// How the artifact ran.
    pub outcome: RunOutcome,
}

/// Ground-truth facts about the program under test, shared by every stage.
#[derive(Debug, Clone, Copy)]
pub struct OracleInput {
    /// The sanitizer this matrix exercises.
    pub sanitizer: Sanitizer,
    /// Ground-truth UB kind of the program.
    pub ub_kind: UbKind,
    /// Ground-truth UB location.
    pub ub_loc: Loc,
}

/// Why a discrepancy was dropped instead of filed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropReason {
    /// Arbitrated: the optimizer removed the UB before the sanitizer pass
    /// (Algorithm 2 returned *false* for every normal cell).
    OptimizationArtifact,
    /// Unarbitratable: the artifacts carry no module and the backend has no
    /// trace capability at all.
    NoModule,
    /// Unarbitratable: the backend is trace-capable but produced no trace
    /// for these artifacts (debugger missing a step, trace timeout, …).
    NoTrace,
    /// Expected miss: the cell's partial-sanitization policy skipped the UB
    /// check site, so the sanitizer never had a chance to report — the miss
    /// is the policy working as configured, not a sanitizer FN bug.
    ExpectedMiss,
}

impl DropReason {
    /// Telemetry spelling.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::OptimizationArtifact => "optimization-artifact",
            DropReason::NoModule => "no-module",
            DropReason::NoTrace => "no-trace",
            DropReason::ExpectedMiss => "expected-miss",
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the oracle decided about one `(program, sanitizer)` matrix — the
/// accumulator the stages of an [`OracleStack`] fill in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleVerdicts {
    /// Cells whose report carries wrong line information (indices into the
    /// judged `cells`, in cell order).
    pub wrong_reports: Vec<usize>,
    /// Whether the matrix holds a report/normal-exit discrepancy at all.
    pub discrepancy: bool,
    /// Normal-exit cells Algorithm 2 selected as sanitizer FN bugs
    /// (indices into the judged `cells`, in cell order).
    pub sanitizer_bugs: Vec<usize>,
    /// The crash site extracted from the first reporting cell, when the
    /// mapping stage got that far (Definition 2).
    pub crash_site: Option<Loc>,
    /// Why nothing was selected, when a discrepancy existed but
    /// `sanitizer_bugs` stayed empty.
    pub dropped: Option<DropReason>,
    /// The partial-sanitization policy skipped the ground-truth UB check
    /// site in this matrix's modules. Usually there is then no discrepancy
    /// at all — every cell misses identically — so this flag, not
    /// [`OracleVerdicts::drop_reason`], is how expected misses reach the
    /// campaign's telemetry. Always `false` under the full policy.
    pub expected_miss: bool,
}

impl OracleVerdicts {
    /// Whether the discrepancy was selected as a bug (at least one normal
    /// cell mapped to [`Verdict::SanitizerBug`]).
    pub fn selected(&self) -> bool {
        self.discrepancy && !self.sanitizer_bugs.is_empty()
    }

    /// The drop accounting for this matrix: `Some(reason)` exactly when a
    /// discrepancy existed and nothing was selected.
    pub fn drop_reason(&self) -> Option<DropReason> {
        (self.discrepancy && self.sanitizer_bugs.is_empty())
            .then(|| self.dropped.unwrap_or(DropReason::OptimizationArtifact))
    }
}

/// Per-sanitizer, per-reason dropped-discrepancy accounting — the telemetry
/// that makes real-toolchain campaigns debuggable ("were those drops
/// arbitrated, or could we just not trace?"). Campaign equality excludes it
/// for the same reason it excludes cache counters: trace availability is
/// execution metadata, results must not depend on it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleTelemetry {
    dropped: std::collections::BTreeMap<(Sanitizer, DropReason), usize>,
}

impl OracleTelemetry {
    /// Records one dropped discrepancy.
    pub fn record_drop(&mut self, sanitizer: Sanitizer, reason: DropReason) {
        *self.dropped.entry((sanitizer, reason)).or_default() += 1;
    }

    /// Dropped count for one `(sanitizer, reason)` bucket.
    pub fn dropped(&self, sanitizer: Sanitizer, reason: DropReason) -> usize {
        self.dropped.get(&(sanitizer, reason)).copied().unwrap_or(0)
    }

    /// Total drops across sanitizers for one reason.
    pub fn dropped_for(&self, reason: DropReason) -> usize {
        self.dropped.iter().filter(|((_, r), _)| *r == reason).map(|(_, n)| n).sum()
    }

    /// Total drops that were *not* arbitrated (no module, no trace) — zero
    /// on fully trace-capable backends like the simulated one.
    pub fn unarbitrated(&self) -> usize {
        self.dropped_for(DropReason::NoModule) + self.dropped_for(DropReason::NoTrace)
    }

    /// Expected misses for one sanitizer — discrepancies whose UB site the
    /// partial-sanitization policy skipped. Separated from true FN bugs so
    /// partial campaigns stay honest about what their detection loss is.
    pub fn expected_misses(&self, sanitizer: Sanitizer) -> usize {
        self.dropped(sanitizer, DropReason::ExpectedMiss)
    }

    /// Total expected misses across sanitizers.
    pub fn expected_miss_total(&self) -> usize {
        self.dropped_for(DropReason::ExpectedMiss)
    }

    /// The sanitizers with any drop on record, in stable order.
    pub fn sanitizers(&self) -> Vec<Sanitizer> {
        let mut out: Vec<Sanitizer> = self.dropped.keys().map(|(s, _)| *s).collect();
        out.dedup();
        out
    }

    /// True when nothing was dropped.
    pub fn is_empty(&self) -> bool {
        self.dropped.is_empty()
    }
}

/// The campaign-facing oracle seam: judges one program's compiled matrix
/// for one sanitizer. Implementations must be deterministic functions of
/// `(backend, input, cells)` — the campaign's sequential-vs-parallel
/// bit-identity property extends through whatever oracle is plugged in.
pub trait CrashOracle: fmt::Debug + Send + Sync {
    /// Short oracle name for logs and reports.
    fn name(&self) -> &str;

    /// Judges `cells` (one program × one sanitizer × the full compiler/opt
    /// matrix, in campaign order).
    fn judge(
        &self,
        backend: &dyn CompilerBackend,
        input: OracleInput,
        cells: &[CompiledCell],
    ) -> OracleVerdicts;
}

/// Everything a stage may read: the backend (for traces), the program
/// facts, the cells, and the precomputed reporting/normal index lists every
/// stage needs.
pub struct StageContext<'a> {
    /// The backend that built and ran the cells.
    pub backend: &'a dyn CompilerBackend,
    /// Program facts.
    pub input: OracleInput,
    /// The compiled matrix under judgment.
    pub cells: &'a [CompiledCell],
    /// Execution limits for traced replays.
    pub run_request: RunRequest,
    reporting: Vec<usize>,
    normal: Vec<usize>,
}

impl<'a> StageContext<'a> {
    /// Builds a context, precomputing the reporting/normal partitions.
    pub fn new(
        backend: &'a dyn CompilerBackend,
        input: OracleInput,
        cells: &'a [CompiledCell],
        run_request: RunRequest,
    ) -> StageContext<'a> {
        let reporting = (0..cells.len()).filter(|&i| cells[i].outcome.is_report()).collect();
        let normal = (0..cells.len()).filter(|&i| cells[i].outcome.is_normal_exit()).collect();
        StageContext { backend, input, cells, run_request, reporting, normal }
    }

    /// Cells whose sanitizer reported ("crashed"), in cell order.
    pub fn reporting(&self) -> &[usize] {
        &self.reporting
    }

    /// Cells that exited normally, in cell order.
    pub fn normal(&self) -> &[usize] {
        &self.normal
    }

    /// `GetExecutedSites` for one cell: the module fast path when the
    /// artifact carries one, the backend's trace capability otherwise.
    /// `Err` classifies *why* no sites exist (feeds drop accounting).
    pub fn executed_sites(&self, cell: usize) -> Result<SiteTrace, DropReason> {
        trace_artifact(self.backend, &self.cells[cell].artifact, &self.run_request)
    }
}

/// One composable step of an [`OracleStack`]. Stages run in stack order
/// over a shared context and accumulate into [`OracleVerdicts`]; later
/// stages may read what earlier ones wrote (the mapping stage keys off
/// `discrepancy`).
pub trait OracleStage: fmt::Debug + Send + Sync {
    /// Stage name for stack descriptions.
    fn name(&self) -> &'static str;

    /// Runs the stage.
    fn run(&self, cx: &StageContext<'_>, out: &mut OracleVerdicts);
}

/// Wrong-report detection: the sanitizer reported, but the report points
/// *before* the UB site (two of the paper's 31 bugs carry wrong report
/// information). Reports at later lines are legitimate: the optimizer may
/// have removed a dead UB access and the sanitizer then correctly blames
/// the next one.
#[derive(Debug, Clone, Copy, Default)]
pub struct WrongReportDetection;

impl OracleStage for WrongReportDetection {
    fn name(&self) -> &'static str {
        "wrong-report"
    }

    fn run(&self, cx: &StageContext<'_>, out: &mut OracleVerdicts) {
        for &i in cx.reporting() {
            let report = cx.cells[i].outcome.report().expect("reporting index");
            if report.kind.matches_ub(cx.input.ub_kind) && report.loc.line < cx.input.ub_loc.line
            {
                out.wrong_reports.push(i);
            }
        }
    }
}

/// Discrepancy accounting: a matrix is discrepant when at least one cell
/// reported and at least one exited normally — the premise every selection
/// stage builds on.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscrepancyAccounting;

impl OracleStage for DiscrepancyAccounting {
    fn name(&self) -> &'static str {
        "discrepancy"
    }

    fn run(&self, cx: &StageContext<'_>, out: &mut OracleVerdicts) {
        out.discrepancy = !cx.reporting().is_empty() && !cx.normal().is_empty();
    }
}

/// Crash-site mapping (Algorithm 2): extract the crash site of the first
/// reporting cell, then select every normal cell that still executes it.
/// Unarbitratable cells (no module, no trace) feed the drop accounting
/// instead of being silently skipped.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashSiteMapping;

impl OracleStage for CrashSiteMapping {
    fn name(&self) -> &'static str {
        "crash-site-mapping"
    }

    fn run(&self, cx: &StageContext<'_>, out: &mut OracleVerdicts) {
        if !out.discrepancy {
            return;
        }
        let bc = match cx.executed_sites(cx.reporting()[0]) {
            Ok(trace) => trace,
            Err(reason) => {
                out.dropped = Some(reason);
                return;
            }
        };
        let crash_site = bc.last();
        out.crash_site = Some(crash_site);
        let mut arbitrated = 0usize;
        let mut unarbitrated = None;
        for &ni in cx.normal() {
            match cx.executed_sites(ni) {
                Ok(bn) => {
                    arbitrated += 1;
                    if arbitrate(&bc, crash_site, &bn) == Verdict::SanitizerBug {
                        out.sanitizer_bugs.push(ni);
                    }
                }
                Err(reason) => {
                    unarbitrated.get_or_insert(reason);
                }
            }
        }
        if out.sanitizer_bugs.is_empty() {
            // Any pair that *was* arbitrated makes the drop an arbitrated
            // one; only a matrix with no traceable normal cell at all is
            // accounted as unarbitratable.
            out.dropped = Some(match unarbitrated {
                Some(reason) if arbitrated == 0 => reason,
                _ => DropReason::OptimizationArtifact,
            });
        }
    }
}

/// Partial-sanitization awareness: under a [`ubfuzz_simcc::SanPolicy`]
/// other than `Full`, a cell whose module skipped the ground-truth UB check
/// site could never have reported — its silence is an **expected miss**,
/// not a sanitizer FN bug, and its (necessarily mislocated) report is not a
/// wrong report. The stage prunes both selections and, when pruning empties
/// the bug list, reclassifies the drop as [`DropReason::ExpectedMiss`] so
/// campaign telemetry accounts it per sanitizer, away from true FNs.
///
/// Under `Full` every skipped-site set is empty, so the stage is a no-op
/// and the standard stack stays bit-identical to the pre-partition oracle.
/// Opaque artifacts (no module) carry no skipped-site set and are left
/// untouched — native backends do not model partial instrumentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartialSanAwareness;

impl PartialSanAwareness {
    fn skipped_ub_site(cx: &StageContext<'_>, cell: usize) -> bool {
        cx.cells[cell].artifact.module().is_some_and(|m| {
            // Line granularity, matching the wrong-report stage: check
            // emissions inherit the UB instruction's line.
            m.san.skipped_sites.iter().any(|l| l.line == cx.input.ub_loc.line)
        })
    }
}

impl OracleStage for PartialSanAwareness {
    fn name(&self) -> &'static str {
        "partial-san"
    }

    fn run(&self, cx: &StageContext<'_>, out: &mut OracleVerdicts) {
        // The skip predicate is a pure function of (policy, function, site),
        // so the whole matrix shares one subset: if any cell skipped the UB
        // site, every module-carrying cell did, and the matrix as a whole
        // could never have caught this program.
        out.expected_miss = (0..cx.cells.len()).any(|i| Self::skipped_ub_site(cx, i));
        out.wrong_reports.retain(|&i| !Self::skipped_ub_site(cx, i));
        let before = out.sanitizer_bugs.len();
        out.sanitizer_bugs.retain(|&i| !Self::skipped_ub_site(cx, i));
        if before > 0 && out.sanitizer_bugs.is_empty() {
            out.dropped = Some(DropReason::ExpectedMiss);
        }
    }
}

/// The §4.4 ablation's selection rule: *every* discrepancy is a bug, filed
/// against every normal cell — the "practically infeasible" triage burden
/// the paper motivates crash-site mapping with.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveSelection;

impl OracleStage for NaiveSelection {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn run(&self, cx: &StageContext<'_>, out: &mut OracleVerdicts) {
        if out.discrepancy {
            out.sanitizer_bugs.extend_from_slice(cx.normal());
        }
    }
}

/// The standard [`CrashOracle`]: an ordered stage list over a shared
/// context. Campaigns carry one in their config; ablations select a
/// different stack instead of forking campaign code.
#[derive(Debug, Clone)]
pub struct OracleStack {
    name: &'static str,
    stages: Vec<Arc<dyn OracleStage>>,
    run_request: RunRequest,
}

impl OracleStack {
    /// A stack from explicit stages.
    pub fn new(name: &'static str, stages: Vec<Arc<dyn OracleStage>>) -> OracleStack {
        OracleStack { name, stages, run_request: RunRequest::default() }
    }

    /// The paper's oracle: wrong-report detection, discrepancy accounting,
    /// crash-site mapping, partial-sanitization awareness. This is the
    /// campaign default, bit-identical to the pre-trait free-function
    /// oracle on module-carrying backends (the awareness stage is a no-op
    /// under the full policy).
    pub fn standard() -> OracleStack {
        OracleStack::new(
            "standard",
            vec![
                Arc::new(WrongReportDetection),
                Arc::new(DiscrepancyAccounting),
                Arc::new(CrashSiteMapping),
                Arc::new(PartialSanAwareness),
            ],
        )
    }

    /// The §4.4 ablation stack: every discrepancy is filed, nothing is
    /// arbitrated.
    pub fn naive() -> OracleStack {
        OracleStack::new(
            "naive",
            vec![Arc::new(DiscrepancyAccounting), Arc::new(NaiveSelection)],
        )
    }

    /// Overrides the execution limits traced replays run under.
    pub fn with_run_request(mut self, run_request: RunRequest) -> OracleStack {
        self.run_request = run_request;
        self
    }

    /// The stages, in judgment order.
    pub fn stages(&self) -> &[Arc<dyn OracleStage>] {
        &self.stages
    }
}

impl CrashOracle for OracleStack {
    fn name(&self) -> &str {
        self.name
    }

    fn judge(
        &self,
        backend: &dyn CompilerBackend,
        input: OracleInput,
        cells: &[CompiledCell],
    ) -> OracleVerdicts {
        let cx = StageContext::new(backend, input, cells, self.run_request.clone());
        let mut out = OracleVerdicts::default();
        for stage in &self.stages {
            stage.run(&cx, &mut out);
        }
        out
    }
}

/// `GetExecutedSites` (Algorithm 2, lines 8–16) over any backend artifact:
/// module-carrying artifacts replay on the simulated VM's exact tracer (so
/// results are bit-identical to the historical module-level oracle
/// regardless of the backend's own trace support); opaque artifacts go
/// through [`CompilerBackend::trace`]. `Err` classifies why no sites exist.
pub fn trace_artifact(
    backend: &dyn CompilerBackend,
    artifact: &Artifact,
    req: &RunRequest,
) -> Result<SiteTrace, DropReason> {
    let _span = ubfuzz_obs::Span::enter(ubfuzz_obs::Stage::Trace, 0);
    if let Some(m) = artifact.module() {
        let (_, trace) = ubfuzz_simvm::run_with_config(
            m,
            &ubfuzz_simvm::VmConfig { step_limit: req.step_limit, trace: true },
        );
        return Ok(SiteTrace::from_vm(trace));
    }
    match backend.trace(artifact, req) {
        Some(trace) => Ok(trace),
        None if backend.trace_capability() == TraceCapability::None => Err(DropReason::NoModule),
        None => Err(DropReason::NoTrace),
    }
}

/// Algorithm 2's comparison: is `crash_site` (recovered from `bc`) executed
/// by `bn`? Compared at the coarsest granularity either trace offers — a
/// line-granular side degrades the whole comparison to lines, exactly what
/// a debugger-recovered site supports.
pub fn arbitrate(bc: &SiteTrace, crash_site: Loc, bn: &SiteTrace) -> Verdict {
    let executed = if bc.line_granular() || bn.line_granular() {
        bn.contains_line(crash_site.line)
    } else {
        bn.contains_site(crash_site)
    };
    if executed {
        Verdict::SanitizerBug
    } else {
        Verdict::OptimizationArtifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubfuzz_backend::{RunRequest, SimBackend};
    use ubfuzz_minic::parse;
    use ubfuzz_simcc::defects::DefectRegistry;
    use ubfuzz_simcc::pipeline::{compile, CompileConfig};
    use ubfuzz_simcc::target::{OptLevel, Vendor};
    use ubfuzz_simcc::Sanitizer;
    use ubfuzz_simvm::{run_module, ReportKind, SanReport};

    fn cells_for(
        src: &str,
        reg: &DefectRegistry,
        vendor: Vendor,
        opts: &[OptLevel],
        sanitizer: Sanitizer,
    ) -> Vec<CompiledCell> {
        let p = parse(src).unwrap();
        opts.iter()
            .map(|&opt| {
                let m = compile(&p, &CompileConfig::dev(vendor, opt, Some(sanitizer), reg))
                    .unwrap();
                let outcome = run_module(&m);
                CompiledCell {
                    compiler: CompilerId::dev(vendor),
                    opt,
                    artifact: Artifact::Sim(m),
                    outcome,
                }
            })
            .collect()
    }

    fn input_for(kind: UbKind, line: u32) -> OracleInput {
        OracleInput { sanitizer: Sanitizer::Asan, ub_kind: kind, ub_loc: Loc::new(line, 0) }
    }

    const FIG1: &str = "
        struct a { int x; };
        struct a b[2];
        struct a *c = b;
        struct a *d = b;
        int k = 0;
        int main(void) {
            c->x = b[0].x;
            k = 2;
            c->x = (d + k)->x;
            return c->x;
        }
    ";

    #[test]
    fn standard_stack_flags_defect_caused_discrepancy_as_bug() {
        // Fig. 1 world: the -O2 miss is a sanitizer bug; the crash site (the
        // dereference) is still executed at -O2.
        let reg = DefectRegistry::full();
        let cells =
            cells_for(FIG1, &reg, Vendor::Gcc, &[OptLevel::O0, OptLevel::O2], Sanitizer::Asan);
        let backend = SimBackend::uncached();
        let v = OracleStack::standard().judge(
            &backend,
            input_for(UbKind::BufOverflowPtr, 10),
            &cells,
        );
        assert!(v.discrepancy);
        assert_eq!(v.sanitizer_bugs, vec![1], "the -O2 normal exit is selected");
        assert!(v.selected());
        assert!(v.crash_site.expect("mapping ran").is_known());
        assert_eq!(v.drop_reason(), None);
    }

    #[test]
    fn standard_stack_flags_optimized_away_ub_as_artifact() {
        // Fig. 3 world: the UB store is dead and removed by -O2 before the
        // sanitizer pass; no instruction at the crash site survives.
        let reg = DefectRegistry::pristine();
        let src = "
            int g;
            int main(void) {
                int d[2];
                int i = 2;
                d[i] = 1;
                g = 7;
                print_value(g);
                return 0;
            }
        ";
        let cells =
            cells_for(src, &reg, Vendor::Gcc, &[OptLevel::O0, OptLevel::O2], Sanitizer::Asan);
        let backend = SimBackend::uncached();
        let v = OracleStack::standard().judge(
            &backend,
            input_for(UbKind::BufOverflowArray, 6),
            &cells,
        );
        assert!(v.discrepancy);
        assert!(v.sanitizer_bugs.is_empty());
        assert_eq!(v.drop_reason(), Some(DropReason::OptimizationArtifact));
    }

    #[test]
    fn no_discrepancy_selects_nothing() {
        let reg = DefectRegistry::pristine();
        let cells = cells_for(
            "int main(void) { return 0; }",
            &reg,
            Vendor::Gcc,
            &[OptLevel::O0, OptLevel::O2],
            Sanitizer::Asan,
        );
        let backend = SimBackend::uncached();
        let v = OracleStack::standard().judge(
            &backend,
            input_for(UbKind::BufOverflowArray, 1),
            &cells,
        );
        assert!(!v.discrepancy);
        assert_eq!(v.drop_reason(), None);
        assert!(v.crash_site.is_none(), "mapping never ran");
    }

    #[test]
    fn pristine_world_matrices_are_never_bugs() {
        // With correct sanitizers, any discrepancy across levels must be an
        // optimization artifact — the oracle's precision property (§4.4).
        let reg = DefectRegistry::pristine();
        let src = "
            int g;
            int main(void) {
                int dead[4];
                int j = 5;
                dead[j] = 3;
                g = 1;
                print_value(g);
                return 0;
            }
        ";
        let backend = SimBackend::uncached();
        for vendor in Vendor::ALL {
            let cells = cells_for(src, &reg, vendor, &OptLevel::ALL, Sanitizer::Asan);
            let v = OracleStack::standard().judge(
                &backend,
                input_for(UbKind::BufOverflowArray, 5),
                &cells,
            );
            assert!(
                v.sanitizer_bugs.is_empty(),
                "{vendor}: pristine sanitizers have no FN bugs: {v:?}"
            );
        }
    }

    #[test]
    fn naive_stack_files_every_discrepancy() {
        let reg = DefectRegistry::pristine();
        let src = "
            int g;
            int main(void) {
                int d[2];
                int i = 2;
                d[i] = 1;
                g = 7;
                print_value(g);
                return 0;
            }
        ";
        let cells =
            cells_for(src, &reg, Vendor::Gcc, &[OptLevel::O0, OptLevel::O2], Sanitizer::Asan);
        let backend = SimBackend::uncached();
        let input = input_for(UbKind::BufOverflowArray, 6);
        let standard = OracleStack::standard().judge(&backend, input, &cells);
        let naive = OracleStack::naive().judge(&backend, input, &cells);
        assert!(!standard.selected(), "mapping drops the Fig. 3 shape");
        assert!(naive.selected(), "the ablation stack files it");
        assert_eq!(naive.sanitizer_bugs, vec![1]);
        assert_eq!(OracleStack::naive().name(), "naive");
        assert_eq!(OracleStack::standard().stages().len(), 4);
    }

    #[test]
    fn policy_skipped_ub_site_is_an_expected_miss_not_a_bug() {
        // The tent-pole scenario: the defect world would normally make the
        // uninstrumented cell an FN-bug selection (the UB site is still
        // executed), but its policy skipped the check site — the standard
        // stack must account it as an expected miss, never file it.
        let reg = DefectRegistry::full();
        let p = parse(FIG1).unwrap();
        let full = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &reg),
        )
        .unwrap();
        let none = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &reg)
                .with_policy(ubfuzz_simcc::SanPolicy::None),
        )
        .unwrap();
        let cells = vec![
            CompiledCell {
                compiler: CompilerId::dev(Vendor::Gcc),
                opt: OptLevel::O0,
                outcome: run_module(&full),
                artifact: Artifact::Sim(full),
            },
            CompiledCell {
                compiler: CompilerId::dev(Vendor::Gcc),
                opt: OptLevel::O0,
                outcome: run_module(&none),
                artifact: Artifact::Sim(none),
            },
        ];
        assert!(cells[0].outcome.is_report(), "full cell reports");
        assert!(cells[1].outcome.is_normal_exit(), "uninstrumented cell runs through");
        let backend = SimBackend::uncached();
        let input = input_for(UbKind::BufOverflowPtr, 10);
        let v = OracleStack::standard().judge(&backend, input, &cells);
        assert!(v.discrepancy);
        assert!(!v.selected(), "expected miss must never be filed as an FN bug");
        assert!(v.wrong_reports.is_empty());
        assert_eq!(v.drop_reason(), Some(DropReason::ExpectedMiss));
        assert!(v.expected_miss, "the flag feeds campaign telemetry without a discrepancy");
        // The telemetry spelling the campaign greps for.
        assert_eq!(DropReason::ExpectedMiss.name(), "expected-miss");
        let mut t = OracleTelemetry::default();
        t.record_drop(input.sanitizer, v.drop_reason().unwrap());
        assert_eq!(t.expected_misses(Sanitizer::Asan), 1);
        assert_eq!(t.expected_miss_total(), 1);
        assert_eq!(t.unarbitrated(), 0, "expected misses are not trace failures");
        // The §4.4 ablation has no awareness stage and would have filed it
        // — the exact triage noise the stage exists to prevent.
        assert!(OracleStack::naive().judge(&backend, input, &cells).selected());
    }

    #[test]
    fn wrong_report_stage_only_flags_reports_before_the_ub_site() {
        // Hand-crafted outcomes: the stage must flag an earlier-line report
        // and never a later-line one (the dead-UB-removed case where the
        // sanitizer correctly blames the next access).
        let reg = DefectRegistry::pristine();
        let p = parse("int main(void) { return 0; }").unwrap();
        let m = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &reg),
        )
        .unwrap();
        let backend = SimBackend::uncached();
        let cell = |line: u32| CompiledCell {
            compiler: CompilerId::dev(Vendor::Gcc),
            opt: OptLevel::O0,
            artifact: Artifact::Sim(m.clone()),
            outcome: RunOutcome::Report(SanReport {
                sanitizer: Sanitizer::Asan,
                kind: ReportKind::GlobalBufOverflow,
                loc: Loc::new(line, 0),
            }),
        };
        let input = input_for(UbKind::BufOverflowArray, 5);
        let stack = OracleStack::new("wr", vec![Arc::new(WrongReportDetection)]);
        let early = stack.judge(&backend, input, &[cell(3)]);
        assert_eq!(early.wrong_reports, vec![0], "report before the UB site is wrong");
        let same = stack.judge(&backend, input, &[cell(5)]);
        assert!(same.wrong_reports.is_empty(), "the UB line itself is correct");
        let late = stack.judge(&backend, input, &[cell(9)]);
        assert!(late.wrong_reports.is_empty(), "later reports are legitimate");
    }

    #[test]
    fn line_granular_traces_arbitrate_by_line() {
        let site = SiteTrace::from_vm(ubfuzz_simvm::Trace {
            executed: [Loc::new(4, 2), Loc::new(5, 0)].into_iter().collect(),
            last: Loc::new(5, 0),
        });
        let line = SiteTrace::from_lines(vec![3, 4]);
        // Site-vs-site compares exactly …
        let other = SiteTrace::from_vm(ubfuzz_simvm::Trace {
            executed: [Loc::new(4, 9)].into_iter().collect(),
            last: Loc::new(4, 9),
        });
        assert_eq!(arbitrate(&site, Loc::new(4, 2), &other), Verdict::OptimizationArtifact);
        // … but one line-granular side degrades the comparison to lines.
        assert_eq!(arbitrate(&site, Loc::new(4, 2), &line), Verdict::SanitizerBug);
        assert_eq!(arbitrate(&line, Loc::new(4, 0), &site), Verdict::SanitizerBug);
        assert_eq!(arbitrate(&line, Loc::new(9, 0), &site), Verdict::OptimizationArtifact);
    }

    #[test]
    fn telemetry_buckets_by_sanitizer_and_reason() {
        let mut t = OracleTelemetry::default();
        assert!(t.is_empty());
        t.record_drop(Sanitizer::Asan, DropReason::OptimizationArtifact);
        t.record_drop(Sanitizer::Asan, DropReason::NoModule);
        t.record_drop(Sanitizer::Msan, DropReason::NoTrace);
        t.record_drop(Sanitizer::Msan, DropReason::NoTrace);
        assert_eq!(t.dropped(Sanitizer::Asan, DropReason::NoModule), 1);
        assert_eq!(t.dropped_for(DropReason::NoTrace), 2);
        assert_eq!(t.unarbitrated(), 3);
        assert_eq!(t.sanitizers(), vec![Sanitizer::Asan, Sanitizer::Msan]);
        assert_eq!(DropReason::NoModule.to_string(), "no-module");
    }

    #[test]
    fn pair_primitives_implement_algorithm_2() {
        // trace_artifact + arbitrate are the pair-level Algorithm 2
        // (`IsBug`): the O0 sanitizer report's crash site is executed by
        // the O2 binary, so the discrepancy is a sanitizer bug. This is the
        // migrated coverage of the removed module-only shim — the stack
        // over the same matrix is pinned by
        // `standard_stack_flags_defect_caused_discrepancy_as_bug` above.
        let reg = DefectRegistry::full();
        let p = parse(FIG1).unwrap();
        let bc = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &reg),
        )
        .unwrap();
        let bn = compile(
            &p,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &reg),
        )
        .unwrap();
        // The premise the campaign establishes before arbitration: one side
        // reports, the other exits normally.
        assert!(run_module(&bc).is_report());
        assert!(run_module(&bn).is_normal_exit());
        let backend = SimBackend::uncached();
        let req = RunRequest::default();
        let tc = trace_artifact(&backend, &Artifact::Sim(bc), &req).unwrap();
        let tn = trace_artifact(&backend, &Artifact::Sim(bn), &req).unwrap();
        assert!(tc.last().is_known(), "crash site extracted (Definition 2)");
        assert_eq!(arbitrate(&tc, tc.last(), &tn), Verdict::SanitizerBug);
    }
}
