//! `ubfuzz-bench` — the benchmark harness that regenerates every table and
//! figure of the paper's evaluation section.
//!
//! Two binaries drive the experiments (sizes are laptop-scale by default;
//! pass `--seeds N` to push further):
//!
//! * `make_tables --table 2|3|4|5|6 [--seeds N]`
//! * `make_figures --figure 7|9|10|11 [--seeds N]`
//!
//! The Criterion benches in `benches/paper.rs` measure the cost of each
//! pipeline stage (seed generation, UB generation, compilation at every
//! level, VM execution, crash-site mapping) so the throughput numbers in
//! EXPERIMENTS.md can be reproduced.

use std::path::PathBuf;
use std::sync::Arc;
use ubfuzz::backend::{CompilerBackend, SimBackend};
use ubfuzz::campaign::{CampaignConfig, CampaignStats};
use ubfuzz::{persist, store};

/// Parses `--flag value` style arguments with a default.
pub fn arg_value(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The persistence flags both binaries share.
#[derive(Debug, Clone, Default)]
pub struct StoreArgs {
    /// `--store DIR`: the persistent store directory.
    pub dir: Option<PathBuf>,
    /// `--resume`: checkpoint the campaign and resume a compatible log.
    pub resume: bool,
    /// `--store-budget BYTES`: compact the compile-cache tables down to
    /// this combined byte budget after the run.
    pub budget: Option<u64>,
}

/// Parses `--store DIR` / `--resume` / `--store-budget BYTES`, exiting with
/// status 2 on misuse (both binaries must reject it identically — the CI
/// persistence job drives them interchangeably). A `--store` whose value is
/// missing or is itself a flag is an error, not a silently storeless run or
/// a directory literally named `--resume`; likewise a `--store-budget`
/// whose value is missing or not a byte count.
pub fn store_args(args: &[String], binary: &str) -> StoreArgs {
    let dir = match args.iter().position(|a| a == "--store") {
        None => None,
        Some(i) => match args.get(i + 1) {
            Some(value) if !value.starts_with("--") => Some(PathBuf::from(value)),
            _ => {
                eprintln!("{binary}: --store requires a directory argument");
                std::process::exit(2);
            }
        },
    };
    let resume = args.iter().any(|a| a == "--resume");
    if resume && dir.is_none() {
        eprintln!("{binary}: --resume requires --store DIR");
        std::process::exit(2);
    }
    let budget = match args.iter().position(|a| a == "--store-budget") {
        None => None,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) {
            Some(bytes) => Some(bytes),
            None => {
                eprintln!("{binary}: --store-budget requires a byte count");
                std::process::exit(2);
            }
        },
    };
    if budget.is_some() && dir.is_none() {
        eprintln!("{binary}: --store-budget requires --store DIR");
        std::process::exit(2);
    }
    StoreArgs { dir, resume, budget }
}

/// The shared backend both binaries thread through every entry point:
/// store-backed when `--store` was given, in-memory otherwise, session
/// sized from the campaign configuration either way.
pub fn shared_backend(cfg: &CampaignConfig, store: &StoreArgs) -> Arc<SimBackend> {
    let capacity = cfg.prefix_key_bound();
    match &store.dir {
        Some(dir) => Arc::new(SimBackend::with_store_capacity(dir, capacity)),
        None => Arc::new(SimBackend::with_session(
            ubfuzz_simcc::session::CompileSession::with_capacity(capacity),
        )),
    }
}

/// Runs the default campaign over `backend`, checkpointing under `--resume`
/// and merging found bugs into the store's corpus — the campaign step both
/// binaries share. Corpus telemetry goes to stderr in the exact format the
/// CI persistence job greps (`[store] corpus: total=… new=… known=…`).
pub fn run_stored_campaign(
    seeds: usize,
    backend: Arc<dyn CompilerBackend>,
    store_args: &StoreArgs,
) -> CampaignStats {
    let mut builder = CampaignConfig::builder().seeds(seeds).backend(backend);
    if store_args.resume {
        builder =
            builder.checkpoint(store_args.dir.as_deref().expect("--resume implies --store"));
    }
    let stats = builder.build_runner().run();
    if let Some(dir) = &store_args.dir {
        let mut corpus = store::BugCorpus::open(dir);
        let merge = persist::merge_bugs(&mut corpus, &stats);
        eprintln!(
            "[store] corpus: total={} new={} known={}",
            corpus.len(),
            merge.new,
            merge.known
        );
    }
    stats
}

/// Prints the store-backed compile-cache telemetry lines (stderr, stable
/// format — the CI persistence job greps ` misses=0 ` and
/// `sanitized: .* misses=0 `). No-op for in-memory backends.
pub fn report_store_telemetry(backend: &SimBackend) {
    let Some(prefix) = backend.prefix_store() else { return };
    let cache = backend.session().stats();
    let t = prefix.telemetry();
    eprintln!(
        "[store] prefix: loaded={} persisted={} hits={} misses={} cold={} truncated={}",
        t.loaded(),
        t.persisted(),
        cache.hits,
        cache.misses,
        t.recovered_cold(),
        t.tail_truncated()
    );
    for event in t.events() {
        eprintln!("[store] event: {event}");
    }
    let Some(sanitized) = backend.sanitized_store() else { return };
    let st = sanitized.telemetry();
    eprintln!(
        "[store] sanitized: loaded={} persisted={} hits={} misses={} cold={} truncated={}",
        st.loaded(),
        st.persisted(),
        cache.san_hits,
        cache.san_misses,
        st.recovered_cold(),
        st.tail_truncated()
    );
    for event in st.events() {
        eprintln!("[store] event: {event}");
    }
    eprintln!(
        "[store] size: prefix={} sanitized={} total={}",
        prefix.size_bytes(),
        sanitized.size_bytes(),
        prefix.size_bytes() + sanitized.size_bytes()
    );
}

/// Compacts both compile-cache tables down to a combined byte budget,
/// split between `prefix.bin` and `sanitized.bin` proportionally to their
/// current on-disk sizes (an empty pair splits evenly). Returns the
/// per-table accounting in `(prefix, sanitized)` order.
pub fn compact_stores(
    prefix: &store::PrefixStore,
    sanitized: &store::SanitizedStore,
    budget: u64,
) -> (store::CompactStats, store::CompactStats) {
    let p = prefix.size_bytes();
    let total = p + sanitized.size_bytes();
    let prefix_budget = if total == 0 {
        budget / 2
    } else {
        (budget as u128 * p as u128 / total as u128) as u64
    };
    let ps = prefix.compact(prefix_budget);
    let ss = sanitized.compact(budget - prefix_budget);
    (ps, ss)
}

/// Runs the post-run compaction pass when `--store-budget` was given,
/// reporting per-table before/after accounting on stderr. No-op for
/// in-memory backends or when no budget was requested.
pub fn compact_backend_stores(backend: &SimBackend, store_args: &StoreArgs) {
    let Some(budget) = store_args.budget else { return };
    let (Some(prefix), Some(sanitized)) = (backend.prefix_store(), backend.sanitized_store())
    else {
        return;
    };
    let (ps, ss) = compact_stores(prefix, sanitized, budget);
    report_compaction(&ps, &ss);
}

/// The shared `[store] compact:` stderr report both the binaries and the
/// standalone compactor print.
pub fn report_compaction(prefix: &store::CompactStats, sanitized: &store::CompactStats) {
    for (table, s) in [("prefix", prefix), ("sanitized", sanitized)] {
        eprintln!(
            "[store] compact: {table} before={} after={} kept={} evicted={}",
            s.before_bytes, s.after_bytes, s.kept, s.evicted
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["prog", "--seeds", "42", "--table", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--seeds", 5), 42);
        assert_eq!(arg_value(&args, "--table", 0), 3);
        assert_eq!(arg_value(&args, "--missing", 7), 7);
    }
}
