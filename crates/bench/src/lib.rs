//! `ubfuzz-bench` — the benchmark harness that regenerates every table and
//! figure of the paper's evaluation section.
//!
//! Two binaries drive the experiments (sizes are laptop-scale by default;
//! pass `--seeds N` to push further):
//!
//! * `make_tables --table 2|3|4|5|6 [--seeds N]`
//! * `make_figures --figure 7|9|10|11 [--seeds N]`
//!
//! The Criterion benches in `benches/paper.rs` measure the cost of each
//! pipeline stage (seed generation, UB generation, compilation at every
//! level, VM execution, crash-site mapping) so the throughput numbers in
//! EXPERIMENTS.md can be reproduced.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use ubfuzz::backend::{CompilerBackend, SimBackend};
use ubfuzz::campaign::{CampaignConfig, CampaignStats};
use ubfuzz::obs::{
    self, event_line, Fanout, Line, MetricsSink, MetricsSnapshot, Recorder, Stage, TraceRecorder,
};
use ubfuzz::{persist, store, SanPolicy, Strategy};
use ubfuzz_simcc::Sanitizer;

/// Parses `--flag value` style arguments with a default.
pub fn arg_value(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--flag value` string argument (`None` when absent or when the
/// value slot holds another flag).
pub fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

/// Installs the process-wide recorder both binaries share: a JSONL
/// [`TraceRecorder`] when `--trace-out FILE` was given, a [`MetricsSink`]
/// when the caller wants aggregation (table 8, `campaign_smoke`), fanned
/// out when both are wanted. The global default reaches executor worker
/// threads without touching the campaign config, and tracing is an
/// observer — stdout stays byte-identical to an uninstrumented run.
/// Exits 2 when the trace file cannot be created (same misuse contract as
/// the persistence flags).
pub fn install_recorders(trace_out: Option<&str>, sink: Option<&Arc<MetricsSink>>, binary: &str) {
    let mut recorders: Vec<Arc<dyn Recorder>> = Vec::new();
    if let Some(path) = trace_out {
        match TraceRecorder::create(Path::new(path)) {
            Ok(trace) => recorders.push(Arc::new(trace)),
            Err(e) => {
                eprintln!("{binary}: --trace-out {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(sink) = sink {
        recorders.push(Arc::clone(sink) as Arc<dyn Recorder>);
    }
    match recorders.len() {
        0 => {}
        1 => {
            obs::set_global(recorders.remove(0));
        }
        _ => {
            obs::set_global(Arc::new(Fanout(recorders)));
        }
    }
}

/// Renders the `make_tables --table 8` per-stage latency breakdown from an
/// aggregated snapshot. Stages render in canonical order; the numbers are
/// wall-clock, so this is the one table that is NOT byte-stable across
/// invocations (the persistence job never diffs it).
pub fn render_stage_breakdown(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("Table 8: per-stage latency breakdown\n");
    out.push_str(&format!(
        "{:<16} {:>8} {:>12} {:>12} {:>12} {:>10}\n",
        "stage", "count", "p50_ns", "p95_ns", "max_ns", "total_s"
    ));
    for stage in Stage::ALL {
        let Some(h) = snap.stages.get(&stage) else { continue };
        out.push_str(&format!(
            "{:<16} {:>8} {:>12} {:>12} {:>12} {:>10.4}\n",
            stage.name(),
            h.count,
            h.p50(),
            h.p95(),
            h.max_ns,
            h.sum_ns as f64 / 1e9
        ));
    }
    out
}

/// The persistence flags both binaries share.
#[derive(Debug, Clone, Default)]
pub struct StoreArgs {
    /// `--store DIR`: the persistent store directory.
    pub dir: Option<PathBuf>,
    /// `--resume`: checkpoint the campaign and resume a compatible log.
    pub resume: bool,
    /// `--store-budget BYTES`: compact the compile-cache tables down to
    /// this combined byte budget after the run.
    pub budget: Option<u64>,
}

/// Parses `--store DIR` / `--resume` / `--store-budget BYTES`, exiting with
/// status 2 on misuse (both binaries must reject it identically — the CI
/// persistence job drives them interchangeably). A `--store` whose value is
/// missing or is itself a flag is an error, not a silently storeless run or
/// a directory literally named `--resume`; likewise a `--store-budget`
/// whose value is missing or not a byte count.
pub fn store_args(args: &[String], binary: &str) -> StoreArgs {
    let dir = match args.iter().position(|a| a == "--store") {
        None => None,
        Some(i) => match args.get(i + 1) {
            Some(value) if !value.starts_with("--") => Some(PathBuf::from(value)),
            _ => {
                eprintln!("{binary}: --store requires a directory argument");
                std::process::exit(2);
            }
        },
    };
    let resume = args.iter().any(|a| a == "--resume");
    if resume && dir.is_none() {
        eprintln!("{binary}: --resume requires --store DIR");
        std::process::exit(2);
    }
    let budget = match args.iter().position(|a| a == "--store-budget") {
        None => None,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) {
            Some(bytes) => Some(bytes),
            None => {
                eprintln!("{binary}: --store-budget requires a byte count");
                std::process::exit(2);
            }
        },
    };
    if budget.is_some() && dir.is_none() {
        eprintln!("{binary}: --store-budget requires --store DIR");
        std::process::exit(2);
    }
    StoreArgs { dir, resume, budget }
}

/// Parses `--strategy uniform|guided` (default [`Strategy::Uniform`]),
/// exiting with status 2 on an unknown value — the same misuse contract as
/// the persistence flags above.
pub fn strategy_arg(args: &[String], binary: &str) -> Strategy {
    match args.iter().position(|a| a == "--strategy") {
        None => Strategy::Uniform,
        Some(i) => match args.get(i + 1).and_then(|v| Strategy::parse(v)) {
            Some(strategy) => strategy,
            None => {
                eprintln!("{binary}: --strategy requires uniform|guided");
                std::process::exit(2);
            }
        },
    }
}

/// Parses `--san full|none|partial[:ratio[:salt]]` (default
/// [`SanPolicy::Full`]), exiting with status 2 on an unknown value — the
/// same misuse contract as `--strategy` (the CI partial job asserts
/// `--san banana` exits 2).
pub fn san_arg(args: &[String], binary: &str) -> SanPolicy {
    match args.iter().position(|a| a == "--san") {
        None => SanPolicy::Full,
        Some(i) => match args.get(i + 1).and_then(|v| SanPolicy::parse(v)) {
            Some(policy) => policy,
            None => {
                eprintln!("{binary}: --san requires full|none|partial[:ratio[:salt]]");
                std::process::exit(2);
            }
        },
    }
}

/// The shared backend both binaries thread through every entry point:
/// store-backed when `--store` was given, in-memory otherwise, session
/// sized from the campaign configuration either way.
pub fn shared_backend(cfg: &CampaignConfig, store: &StoreArgs) -> Arc<SimBackend> {
    let capacity = cfg.prefix_key_bound();
    match &store.dir {
        Some(dir) => Arc::new(SimBackend::with_store_capacity(dir, capacity)),
        None => Arc::new(SimBackend::with_session(
            ubfuzz_simcc::session::CompileSession::with_capacity(capacity),
        )),
    }
}

/// Runs the default campaign over `backend`, checkpointing under `--resume`
/// and merging found bugs into the store's corpus — the campaign step both
/// binaries share. Corpus telemetry goes to stderr in the exact format the
/// CI persistence job greps (`[store] corpus: total=… new=… known=…`).
pub fn run_stored_campaign(
    seeds: usize,
    backend: Arc<dyn CompilerBackend>,
    store_args: &StoreArgs,
    strategy: Strategy,
    san: SanPolicy,
) -> CampaignStats {
    let mut builder = CampaignConfig::builder()
        .seeds(seeds)
        .backend(backend)
        .strategy(strategy)
        .san_policy(san);
    if store_args.resume {
        builder =
            builder.checkpoint(store_args.dir.as_deref().expect("--resume implies --store"));
    }
    let stats = builder.build_runner().run();
    report_expected_misses(&stats);
    if let Some(dir) = &store_args.dir {
        let mut corpus = store::BugCorpus::open(dir);
        let merge = persist::merge_bugs(&mut corpus, &stats);
        eprintln!(
            "{}",
            Line::new("store", "corpus")
                .field("total", corpus.len())
                .field("new", merge.new)
                .field("known", merge.known)
                .render()
        );
    }
    stats
}

/// Prints the partial-sanitization expected-miss accounting (stderr,
/// stable format — the CI partial job greps `[oracle] expected-miss:`).
/// Only printed when at least one miss was recorded, so a full-policy
/// leg's stderr stays byte-identical to the pre-partition harness.
pub fn report_expected_misses(stats: &CampaignStats) {
    if stats.oracle.expected_miss_total() == 0 {
        return;
    }
    let mut line =
        Line::new("oracle", "expected-miss").field("total", stats.oracle.expected_miss_total());
    for s in Sanitizer::ALL {
        line = line.field(&s.name().to_ascii_lowercase(), stats.oracle.expected_misses(s));
    }
    eprintln!("{}", line.render());
}

/// One compile-cache table's telemetry line (`[store] prefix: …` /
/// `[store] sanitized: …` share the shape exactly, so they share the
/// builder chain).
fn cache_table_line(topic: &str, t: &store::StoreTelemetry, hits: u64, misses: u64) -> String {
    Line::new("store", topic)
        .field("loaded", t.loaded())
        .field("persisted", t.persisted())
        .field("hits", hits)
        .field("misses", misses)
        .field("cold", t.recovered_cold())
        .field("truncated", t.tail_truncated())
        .render()
}

/// Prints the store-backed compile-cache telemetry lines (stderr, stable
/// format — the CI persistence job greps ` misses=0 ` and
/// `sanitized: .* misses=0 `). No-op for in-memory backends. The size line
/// covers every table in the directory — `frontier.bin` included, so the
/// reported total is what the directory actually occupies.
pub fn report_store_telemetry(backend: &SimBackend, store_args: &StoreArgs) {
    let Some(prefix) = backend.prefix_store() else { return };
    let cache = backend.session().stats();
    let t = prefix.telemetry();
    eprintln!("{}", cache_table_line("prefix", t, cache.hits, cache.misses));
    for event in t.events() {
        eprintln!("{}", event_line("store", &event));
    }
    let Some(sanitized) = backend.sanitized_store() else { return };
    let st = sanitized.telemetry();
    eprintln!("{}", cache_table_line("sanitized", st, cache.san_hits, cache.san_misses));
    for event in st.events() {
        eprintln!("{}", event_line("store", &event));
    }
    let frontier =
        store_args.dir.as_deref().map_or(0, |dir| store::FrontierStore::open(dir).size_bytes());
    eprintln!(
        "{}",
        Line::new("store", "size")
            .field("prefix", prefix.size_bytes())
            .field("sanitized", sanitized.size_bytes())
            .field("frontier", frontier)
            .field("total", prefix.size_bytes() + sanitized.size_bytes() + frontier)
            .render()
    );
}

/// Prints the persisted coverage-frontier telemetry line (stderr, stable
/// format — the CI guided job greps `[store] frontier:` on the warm leg).
/// No-op without `--store`.
pub fn report_frontier_telemetry(store_args: &StoreArgs) {
    let Some(dir) = &store_args.dir else { return };
    let frontier = store::FrontierStore::open(dir);
    let t = frontier.telemetry();
    eprintln!(
        "{}",
        Line::new("store", "frontier")
            .field("points", frontier.len())
            .field("cold", t.recovered_cold())
            .field("truncated", t.tail_truncated())
            .render()
    );
    for event in t.events() {
        eprintln!("{}", event_line("store", &event));
    }
}

/// One guided-vs-uniform comparison run (see [`compare_strategies`]).
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// The uniform evaluation leg (storeless reference).
    pub uniform: CampaignStats,
    /// The guided evaluation leg (planned against the warm frontier).
    pub guided: CampaignStats,
}

impl StrategyComparison {
    /// Deduplicated bugs per planned compile unit for one leg.
    pub fn bugs_per_unit(stats: &CampaignStats) -> f64 {
        if stats.units == 0 {
            0.0
        } else {
            stats.bugs.len() as f64 / stats.units as f64
        }
    }

    /// Renders the comparison as the `make_tables --table 7` text table:
    /// one row per strategy over the same evaluation seeds, with the
    /// per-unit bug yield and the final frontier size as columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Table 7: feedback-directed generation (uniform vs guided)\n");
        out.push_str(&format!(
            "{:<10} {:>8} {:>6} {:>11} {:>9}\n",
            "strategy", "units", "bugs", "bugs/unit", "frontier"
        ));
        for (name, stats) in [("uniform", &self.uniform), ("guided", &self.guided)] {
            out.push_str(&format!(
                "{:<10} {:>8} {:>6} {:>11.4} {:>9}\n",
                name,
                stats.units,
                stats.bugs.len(),
                Self::bugs_per_unit(stats),
                stats.frontier_points
            ));
        }
        out
    }
}

/// Runs the paper-style feedback experiment behind `make_tables --table 7`
/// and the `campaign_smoke` guided leg: a uniform warm-up campaign over
/// `warm_seeds` seeds persists its coverage frontier into `dir`, then the
/// SAME follow-on seed range runs twice — once uniform (storeless, the
/// reference denominator) and once guided against the warm frontier. Guided
/// planning is a pure function of `(first seed, frontier snapshot)`, so the
/// whole comparison is deterministic: a second invocation over a fresh store
/// reproduces it bit-for-bit.
pub fn compare_strategies(warm_seeds: usize, eval_seeds: usize, dir: &Path) -> StrategyComparison {
    let _warm = CampaignConfig::builder()
        .seeds(warm_seeds)
        .checkpoint(dir)
        .build_runner()
        .run();
    let eval = |strategy: Strategy| {
        let mut builder = CampaignConfig::builder()
            .seeds(eval_seeds)
            .first_seed(warm_seeds as u64)
            .strategy(strategy);
        if strategy == Strategy::Guided {
            // Checkpointing is what routes the store directory (and with it
            // the persisted frontier) into the runner; the uniform leg stays
            // storeless so it cannot see the warm-up at all.
            builder = builder.checkpoint(dir);
        }
        builder.build_runner().run()
    };
    let uniform = eval(Strategy::Uniform);
    let guided = eval(Strategy::Guided);
    StrategyComparison { uniform, guided }
}

/// One full-vs-partial-vs-none sanitization comparison run (see
/// [`compare_policies`]).
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// The full-instrumentation leg (the pre-partition reference).
    pub full: CampaignStats,
    /// The `partial:500` leg: every other check site, deterministically.
    pub partial: CampaignStats,
    /// The uninstrumented leg (compile-overhead floor, zero detection).
    pub none: CampaignStats,
}

impl PolicyComparison {
    /// The legs in rendering order, labelled with their policy spelling.
    pub fn legs(&self) -> [(SanPolicy, &CampaignStats); 3] {
        [
            (SanPolicy::Full, &self.full),
            (SanPolicy::Partial { ratio_pm: 500, salt: 0 }, &self.partial),
            (SanPolicy::None, &self.none),
        ]
    }

    /// Renders the comparison as the `make_tables --table 9` text table:
    /// one row per policy over the same seeds, with the per-unit bug yield
    /// and the expected-miss count as the detection-vs-overhead columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Table 9: partial sanitization (overhead vs detection)\n");
        out.push_str(&format!(
            "{:<14} {:>8} {:>6} {:>11} {:>10}\n",
            "policy", "units", "bugs", "bugs/unit", "exp-miss"
        ));
        for (policy, stats) in self.legs() {
            out.push_str(&format!(
                "{:<14} {:>8} {:>6} {:>11.4} {:>10}\n",
                policy.to_string(),
                stats.units,
                stats.bugs.len(),
                StrategyComparison::bugs_per_unit(stats),
                stats.oracle.expected_miss_total()
            ));
        }
        out
    }
}

/// Runs the overhead-vs-detection experiment behind `make_tables --table 9`
/// and the `campaign_smoke` partial legs: the SAME seed range runs under
/// the full, `partial:500`, and none policies over ONE store directory.
/// The sanitizer-independent prefix stage compiles once and replays into
/// the other legs; only the sanitize stage differs, and each partial subset
/// keys the sanitized table by its site-subset fingerprint, so warm replays
/// never alias across subsets. Every leg is a pure function of
/// `(seeds, policy)`, so the rendered table is byte-stable.
pub fn compare_policies(seeds: usize, dir: &Path) -> PolicyComparison {
    let leg = |policy: SanPolicy| {
        let capacity = CampaignConfig::builder().seeds(seeds).build().prefix_key_bound();
        let backend: Arc<dyn CompilerBackend> =
            Arc::new(SimBackend::with_store_capacity(dir, capacity));
        CampaignConfig::builder()
            .seeds(seeds)
            .backend(backend)
            .san_policy(policy)
            .build_runner()
            .run()
    };
    let full = leg(SanPolicy::Full);
    let partial = leg(SanPolicy::Partial { ratio_pm: 500, salt: 0 });
    let none = leg(SanPolicy::None);
    PolicyComparison { full, partial, none }
}

/// Compacts both compile-cache tables down to a combined byte budget,
/// split between `prefix.bin` and `sanitized.bin` proportionally to their
/// current on-disk sizes (an empty pair splits evenly). `frontier_bytes` is
/// the on-disk size of `frontier.bin`, which is not compactable (bounded by
/// the static coverage registry, rewritten wholesale) but still occupies
/// the directory — its bytes are reserved off the top so the combined
/// directory honours the requested budget. Returns the per-table accounting
/// in `(prefix, sanitized)` order.
pub fn compact_stores(
    prefix: &store::PrefixStore,
    sanitized: &store::SanitizedStore,
    frontier_bytes: u64,
    budget: u64,
) -> (store::CompactStats, store::CompactStats) {
    let budget = budget.saturating_sub(frontier_bytes);
    let p = prefix.size_bytes();
    let total = p + sanitized.size_bytes();
    let prefix_budget = if total == 0 {
        budget / 2
    } else {
        (budget as u128 * p as u128 / total as u128) as u64
    };
    let ps = prefix.compact(prefix_budget);
    let ss = sanitized.compact(budget - prefix_budget);
    (ps, ss)
}

/// Runs the post-run compaction pass when `--store-budget` was given,
/// reporting per-table before/after accounting on stderr. No-op for
/// in-memory backends or when no budget was requested.
pub fn compact_backend_stores(backend: &SimBackend, store_args: &StoreArgs) {
    let Some(budget) = store_args.budget else { return };
    let (Some(prefix), Some(sanitized)) = (backend.prefix_store(), backend.sanitized_store())
    else {
        return;
    };
    let frontier =
        store_args.dir.as_deref().map_or(0, |dir| store::FrontierStore::open(dir).size_bytes());
    let (ps, ss) = compact_stores(prefix, sanitized, frontier, budget);
    report_compaction(&ps, &ss);
}

/// The shared `[store] compact:` stderr report both the binaries and the
/// standalone compactor print.
pub fn report_compaction(prefix: &store::CompactStats, sanitized: &store::CompactStats) {
    for (table, s) in [("prefix", prefix), ("sanitized", sanitized)] {
        eprintln!(
            "{}",
            Line::new("store", "compact")
                .text(table)
                .field("before", s.before_bytes)
                .field("after", s.after_bytes)
                .field("kept", s.kept)
                .field("evicted", s.evicted)
                .render()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["prog", "--seeds", "42", "--table", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--seeds", 5), 42);
        assert_eq!(arg_value(&args, "--table", 0), 3);
        assert_eq!(arg_value(&args, "--missing", 7), 7);
    }

    /// The `[store] …` stderr lines are a CI interface: the persistence and
    /// guided jobs grep them. Unifying the emitters behind [`Line`] must
    /// not move a byte.
    #[test]
    fn telemetry_lines_keep_the_ci_grep_format() {
        assert_eq!(
            Line::new("store", "corpus")
                .field("total", 3)
                .field("new", 0)
                .field("known", 3)
                .render(),
            "[store] corpus: total=3 new=0 known=3"
        );
        assert_eq!(
            Line::new("store", "compact")
                .text("prefix")
                .field("before", 10)
                .field("after", 5)
                .field("kept", 1)
                .field("evicted", 2)
                .render(),
            "[store] compact: prefix before=10 after=5 kept=1 evicted=2"
        );
        assert_eq!(
            cache_table_line("prefix", &store::StoreTelemetry::default(), 4, 0),
            "[store] prefix: loaded=0 persisted=0 hits=4 misses=0 cold=false truncated=false"
        );
        assert_eq!(
            event_line("store", "prefix.bin: truncated torn tail"),
            "[store] event: prefix.bin: truncated torn tail"
        );
    }
}
