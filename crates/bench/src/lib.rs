//! `ubfuzz-bench` — the benchmark harness that regenerates every table and
//! figure of the paper's evaluation section.
//!
//! Two binaries drive the experiments (sizes are laptop-scale by default;
//! pass `--seeds N` to push further):
//!
//! * `make_tables --table 2|3|4|5|6 [--seeds N]`
//! * `make_figures --figure 7|9|10|11 [--seeds N]`
//!
//! The Criterion benches in `benches/paper.rs` measure the cost of each
//! pipeline stage (seed generation, UB generation, compilation at every
//! level, VM execution, crash-site mapping) so the throughput numbers in
//! EXPERIMENTS.md can be reproduced.

/// Parses `--flag value` style arguments with a default.
pub fn arg_value(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["prog", "--seeds", "42", "--table", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--seeds", 5), 42);
        assert_eq!(arg_value(&args, "--table", 0), 3);
        assert_eq!(arg_value(&args, "--missing", 7), 7);
    }
}
