//! Validates a `--trace-out` JSONL event stream: `trace_check FILE`.
//!
//! Every line must be one flat JSON object in the documented trace schema
//! (see `ubfuzz-obs`):
//!
//! ```text
//! {"type":"span","stage":"run","unit":12,"nanos":48211}
//! {"type":"count","name":"prefix_hits","delta":1}
//! {"type":"note","topic":"store","text":"prefix.bin: truncated torn tail"}
//! ```
//!
//! Checked per line: the object parses (flat string/number fields, JSON
//! string escapes), `type` is one of the three event shapes, every field
//! of that shape is present with the right kind, no extra fields, and a
//! span's `stage` is a name `ubfuzz-obs` actually emits. Exit 0 with a
//! `trace_check: N events ok …` summary, exit 1 naming the first bad line,
//! exit 2 on usage/IO errors. The CI metrics job runs it over the
//! `make_tables --trace-out` stream.

use std::collections::BTreeMap;
use ubfuzz::obs::Stage;

/// A flat JSON value: the trace schema never nests.
#[derive(Debug, PartialEq)]
enum Value {
    Str(String),
    Num(u64),
}

/// Parses one flat JSON object (`{"k":"v","n":12}`). `Err` is the reason.
fn parse_object(line: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut fields = BTreeMap::new();
    let mut chars = line.trim().chars().peekable();
    let expect = |chars: &mut std::iter::Peekable<std::str::Chars>, want: char| {
        match chars.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected {want:?}, found {other:?}")),
        }
    };
    let parse_string = |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, String> {
        expect(chars, '"')?;
        let mut s = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(s),
                Some('\\') => match chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('u') => {
                        let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape \\u{hex}"))?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => s.push(c),
            }
        }
    };
    expect(&mut chars, '{')?;
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            let key = parse_string(&mut chars)?;
            expect(&mut chars, ':')?;
            let value = match chars.peek() {
                Some('"') => Value::Str(parse_string(&mut chars)?),
                Some(c) if c.is_ascii_digit() => {
                    let mut digits = String::new();
                    while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                        digits.push(chars.next().unwrap());
                    }
                    Value::Num(digits.parse().map_err(|_| format!("bad number {digits}"))?)
                }
                other => return Err(format!("expected value, found {other:?}")),
            };
            if fields.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate field {key:?}"));
            }
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected , or }}, found {other:?}")),
            }
        }
    }
    match chars.next() {
        None => Ok(fields),
        Some(c) => Err(format!("trailing {c:?} after object")),
    }
}

/// Validates one event object against its `type` shape; returns the type.
fn check_event(fields: &BTreeMap<String, Value>) -> Result<&'static str, String> {
    let str_field = |name: &str| match fields.get(name) {
        Some(Value::Str(s)) => Ok(s.as_str()),
        Some(Value::Num(_)) => Err(format!("{name} must be a string")),
        None => Err(format!("missing field {name}")),
    };
    let num_field = |name: &str| match fields.get(name) {
        Some(Value::Num(_)) => Ok(()),
        Some(Value::Str(_)) => Err(format!("{name} must be a number")),
        None => Err(format!("missing field {name}")),
    };
    let (kind, expected): (&'static str, &[&str]) = match str_field("type")? {
        "span" => {
            let stage = str_field("stage")?;
            if Stage::from_name(stage).is_none() {
                return Err(format!("unknown stage {stage:?}"));
            }
            num_field("unit")?;
            num_field("nanos")?;
            ("span", &["type", "stage", "unit", "nanos"])
        }
        "count" => {
            str_field("name")?;
            num_field("delta")?;
            ("count", &["type", "name", "delta"])
        }
        "note" => {
            str_field("topic")?;
            str_field("text")?;
            ("note", &["type", "topic", "text"])
        }
        other => return Err(format!("unknown event type {other:?}")),
    };
    for key in fields.keys() {
        if !expected.contains(&key.as_str()) {
            return Err(format!("unexpected field {key:?} on a {kind} event"));
        }
    }
    Ok(kind)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: trace_check FILE");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            std::process::exit(2);
        }
    };
    let (mut spans, mut counts, mut notes) = (0u64, 0u64, 0u64);
    for (i, line) in text.lines().enumerate() {
        let checked = parse_object(line).and_then(|fields| check_event(&fields).map(str::to_owned));
        match checked.as_deref() {
            Ok("span") => spans += 1,
            Ok("count") => counts += 1,
            Ok("note") => notes += 1,
            Ok(_) => unreachable!("check_event returns the three event kinds"),
            Err(reason) => {
                eprintln!("trace_check: {path}:{}: {reason}: {line}", i + 1);
                std::process::exit(1);
            }
        }
    }
    println!(
        "trace_check: {} events ok (spans={spans} counts={counts} notes={notes})",
        spans + counts + notes
    );
}
