//! Regenerates the paper's figures: `make_figures --figure 7|9|10|11 [--seeds N]`.
//! `--figure 0` prints all of them.

use ubfuzz::report;
use ubfuzz_bench::arg_value;
use ubfuzz_simcc::defects::DefectRegistry;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let figure = arg_value(&args, "--figure", 0);
    let seeds = arg_value(&args, "--seeds", 30);
    let registry = DefectRegistry::full();
    match figure {
        9 => print!("{}", report::fig9()),
        7 | 10 | 11 => {
            let stats = report::default_campaign(seeds);
            match figure {
                7 => print!("{}", report::fig7(&stats)),
                10 => print!("{}", report::fig10(&stats, &registry)),
                _ => print!("{}", report::fig11(&stats, &registry)),
            }
        }
        _ => {
            let stats = report::default_campaign(seeds);
            print!("{}", report::fig7(&stats));
            print!("{}", report::fig9());
            print!("{}", report::fig10(&stats, &registry));
            print!("{}", report::fig11(&stats, &registry));
        }
    }
}
