//! Regenerates the paper's figures: `make_figures --figure 7|9|10|11 [--seeds N]`.
//! `--figure 0` prints all of them.
//!
//! Like `make_tables`, all entry points share one `SimBackend` (sized from
//! the campaign config): the Fig. 10/11 replays recompile every found bug's
//! test case across stable versions and levels, which re-hits the prefixes
//! the campaign cached. The shared `--store DIR` / `--resume` /
//! `--store-budget BYTES` persistence flags (see `ubfuzz_bench` and
//! `make_tables`) apply here too, as do `--trace-out FILE` (JSONL event
//! stream; an observer — figure bytes do not change), `--strategy`, and
//! `--san full|none|partial[:ratio[:salt]]` (partial-sanitization policy
//! of the campaign behind the figures).

use std::sync::Arc;
use ubfuzz::backend::CompilerBackend;
use ubfuzz::campaign::CampaignConfig;
use ubfuzz::report;
use ubfuzz_bench::{
    arg_str, arg_value, compact_backend_stores, install_recorders, report_store_telemetry,
    run_stored_campaign, san_arg, shared_backend, store_args, strategy_arg,
};
use ubfuzz_simcc::defects::DefectRegistry;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let figure = arg_value(&args, "--figure", 0);
    let seeds = arg_value(&args, "--seeds", 30);
    let store = store_args(&args, "make_figures");
    let strategy = strategy_arg(&args, "make_figures");
    let san = san_arg(&args, "make_figures");
    let trace_out = arg_str(&args, "--trace-out");
    install_recorders(trace_out.as_deref(), None, "make_figures");
    let registry = DefectRegistry::full();
    let backend = shared_backend(&CampaignConfig::builder().seeds(seeds).build(), &store);
    let backend_dyn: Arc<dyn CompilerBackend> = backend.clone();
    let campaign =
        || run_stored_campaign(seeds, Arc::clone(&backend_dyn), &store, strategy, san);
    match figure {
        9 => print!("{}", report::fig9()),
        7 | 10 | 11 => {
            let stats = campaign();
            match figure {
                7 => print!("{}", report::fig7(&stats)),
                10 => print!("{}", report::fig10_with(&stats, &registry, backend.as_ref())),
                _ => print!("{}", report::fig11_with(&stats, &registry, backend.as_ref())),
            }
        }
        _ => {
            let stats = campaign();
            print!("{}", report::fig7(&stats));
            print!("{}", report::fig9());
            print!("{}", report::fig10_with(&stats, &registry, backend.as_ref()));
            print!("{}", report::fig11_with(&stats, &registry, backend.as_ref()));
        }
    }
    report_store_telemetry(&backend, &store);
    compact_backend_stores(&backend, &store);
}
