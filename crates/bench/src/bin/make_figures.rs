//! Regenerates the paper's figures: `make_figures --figure 7|9|10|11 [--seeds N]`.
//! `--figure 0` prints all of them.
//!
//! Like `make_tables`, all entry points share one `SimBackend`: the Fig.
//! 10/11 replays recompile every found bug's test case across stable
//! versions and levels, which re-hits the prefixes the campaign cached.

use std::sync::Arc;
use ubfuzz::backend::{CompilerBackend, SimBackend};
use ubfuzz::report;
use ubfuzz_bench::arg_value;
use ubfuzz_simcc::defects::DefectRegistry;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let figure = arg_value(&args, "--figure", 0);
    let seeds = arg_value(&args, "--seeds", 30);
    let registry = DefectRegistry::full();
    // Sized above the default session budget so the Fig. 10/11 replays keep
    // hitting the campaign's prefixes (see make_tables).
    let backend: Arc<dyn CompilerBackend> = Arc::new(SimBackend::with_session(
        ubfuzz_simcc::session::CompileSession::with_capacity(1 << 15),
    ));
    match figure {
        9 => print!("{}", report::fig9()),
        7 | 10 | 11 => {
            let stats = report::default_campaign_with(Arc::clone(&backend), seeds);
            match figure {
                7 => print!("{}", report::fig7(&stats)),
                10 => print!("{}", report::fig10_with(&stats, &registry, backend.as_ref())),
                _ => print!("{}", report::fig11_with(&stats, &registry, backend.as_ref())),
            }
        }
        _ => {
            let stats = report::default_campaign_with(Arc::clone(&backend), seeds);
            print!("{}", report::fig7(&stats));
            print!("{}", report::fig9());
            print!("{}", report::fig10_with(&stats, &registry, backend.as_ref()));
            print!("{}", report::fig11_with(&stats, &registry, backend.as_ref()));
        }
    }
}
