//! Standalone store compactor:
//! `store_compact --store DIR --store-budget BYTES`.
//!
//! Compacts `prefix.bin` and `sanitized.bin` under `DIR` down to a combined
//! byte budget without running a campaign — the offline counterpart of
//! passing `--store-budget` to `make_tables`/`make_figures`. Neither table
//! is decoded beyond its dedup keys (`open_budgeted(_, 0)`), so compacting
//! a large store is cheap. With no hit-recency on record (nothing ran),
//! eviction deterministically keeps the newest tail of each log.
//!
//! Flag misuse exits with status 2, exactly like the two benchmark
//! binaries; a well-formed invocation prints the shared `[store] compact:`
//! accounting on stderr and exits 0. Corruption found while opening
//! (truncated torn tails, cold rebuilds) is reported as `[store] event: …`
//! lines: the stores mirror every telemetry event through the attached
//! recorder, so a read-only consumer like this one no longer drops them
//! on the floor.

use std::sync::Arc;
use ubfuzz::obs::{self, event_line, Event, Recorder};
use ubfuzz::store::{FrontierStore, PrefixStore, SanitizedStore};
use ubfuzz_bench::{compact_stores, report_compaction, store_args};

/// Prints every store note as a `[store] event: …` stderr line the moment
/// it is recorded — the compactor never renders `telemetry().events()`
/// itself, so without this recorder open-time corruption was invisible.
#[derive(Debug)]
struct StderrEvents;

impl Recorder for StderrEvents {
    fn record(&self, event: &Event<'_>) {
        if let Event::Note { topic, text } = event {
            eprintln!("{}", event_line(topic, text));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let store = store_args(&args, "store_compact");
    let (Some(dir), Some(budget)) = (&store.dir, store.budget) else {
        eprintln!("store_compact: requires --store DIR and --store-budget BYTES");
        std::process::exit(2);
    };
    let _obs = obs::attach(Arc::new(StderrEvents));
    let prefix = PrefixStore::open_budgeted(dir, 0);
    let sanitized = SanitizedStore::open_budgeted(dir, 0);
    // The frontier is not compactable, but its on-disk bytes count against
    // the directory budget the caller asked for.
    let frontier = FrontierStore::open(dir).size_bytes();
    let (ps, ss) = compact_stores(&prefix, &sanitized, frontier, budget);
    report_compaction(&ps, &ss);
}
