//! `campaign_worker` — the bench-side worker-mode entry for the campaign
//! service: exactly [`ubfuzz_serve::worker::worker_main`] behind a binary
//! name, so a daemon started with `--worker-bin target/release/campaign_worker`
//! drives its leases through this harness build (the CI service job does).
//!
//! Flags are the worker-mode flags (`worker --store DIR --shard ID
//! --start A --end B …`); a leading `worker` token is accepted and
//! ignored so the daemon's spawn line works unchanged.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ubfuzz_serve::worker::worker_main(&args));
}
