//! Regenerates the paper's tables: `make_tables --table 2|3|4|5|6 [--seeds N]`.
//! `--table 0` prints all of them plus the §4.4 oracle statistics.
//! `--ablation` prints the §4.4 oracle ablation (naive vs crash-site
//! mapping in the pristine world) instead.

use ubfuzz::report;
use ubfuzz_bench::arg_value;
use ubfuzz_simcc::defects::DefectRegistry;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let table = arg_value(&args, "--table", 0);
    let seeds = arg_value(&args, "--seeds", 30);
    if args.iter().any(|a| a == "--ablation") {
        print!("{}", report::oracle_ablation(seeds));
        return;
    }
    let campaign = || report::default_campaign(seeds);
    match table {
        2 => print!("{}", report::table2()),
        3 => {
            let stats = campaign();
            print!("{}", report::table3(&stats));
            print!("{}", report::oracle_stats(&stats));
        }
        4 => print!("{}", report::table4(&report::generator_comparison(seeds.min(200)))),
        5 => print!("{}", report::coverage_experiment(seeds.min(20))),
        6 => print!("{}", report::table6(&campaign())),
        _ => {
            print!("{}", report::table2());
            let stats = campaign();
            print!("{}", report::table3(&stats));
            print!("{}", report::table4(&report::generator_comparison((seeds / 3).max(2))));
            print!("{}", report::coverage_experiment((seeds / 6).max(2)));
            print!("{}", report::table6(&stats));
            print!("{}", report::oracle_stats(&stats));
            let _ = DefectRegistry::full();
        }
    }
}
