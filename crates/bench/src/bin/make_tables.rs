//! Regenerates the paper's tables: `make_tables --table 2|3|4|5|6 [--seeds N]`.
//! `--table 0` prints all of them plus the §4.4 oracle statistics.
//! `--ablation` prints the §4.4 oracle ablation (naive vs crash-site
//! mapping in the pristine world) instead.
//!
//! Every entry point shares ONE `SimBackend`, so the staged-compile cache
//! persists across tables: the campaign behind Table 3/6 warms the
//! sanitizer-independent prefixes that Table 5's coverage sweep and the
//! ablation replay then reuse (cross-campaign cache persistence).

use std::sync::Arc;
use ubfuzz::backend::{CompilerBackend, SimBackend};
use ubfuzz::report;
use ubfuzz_bench::arg_value;
use ubfuzz_simcc::defects::DefectRegistry;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let table = arg_value(&args, "--table", 0);
    let seeds = arg_value(&args, "--seeds", 30);
    // Sized above the default session budget: table-scale campaigns want
    // tens of thousands of prefixes live at once for cross-table reuse.
    let backend: Arc<dyn CompilerBackend> = Arc::new(SimBackend::with_session(
        ubfuzz_simcc::session::CompileSession::with_capacity(1 << 15),
    ));
    if args.iter().any(|a| a == "--ablation") {
        print!("{}", report::oracle_ablation_with(backend, seeds));
        return;
    }
    let campaign = || report::default_campaign_with(Arc::clone(&backend), seeds);
    match table {
        2 => print!("{}", report::table2()),
        3 => {
            let stats = campaign();
            print!("{}", report::table3(&stats));
            print!("{}", report::oracle_stats(&stats));
        }
        4 => print!("{}", report::table4(&report::generator_comparison(seeds.min(200)))),
        5 => print!("{}", report::coverage_experiment_with(backend.as_ref(), seeds.min(20))),
        6 => print!("{}", report::table6(&campaign())),
        _ => {
            print!("{}", report::table2());
            let stats = campaign();
            print!("{}", report::table3(&stats));
            print!("{}", report::table4(&report::generator_comparison((seeds / 3).max(2))));
            print!(
                "{}",
                report::coverage_experiment_with(backend.as_ref(), (seeds / 6).max(2))
            );
            print!("{}", report::table6(&stats));
            print!("{}", report::oracle_stats(&stats));
            let cache = backend.prefix_cache().expect("sim backend caches").stats();
            eprintln!(
                "[make_tables] shared compile cache across entry points: {} hits, {} misses ({:.1}% reuse)",
                cache.hits,
                cache.misses,
                100.0 * cache.reuse_ratio()
            );
            let _ = DefectRegistry::full();
        }
    }
}
