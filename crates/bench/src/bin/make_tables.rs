//! Regenerates the paper's tables: `make_tables --table 2|3|4|5|6|7|8|9 [--seeds N]`.
//! `--table 0` prints all byte-stable tables plus the §4.4 oracle statistics.
//! Table 7 is this repo's extension table: the guided-vs-uniform strategy
//! comparison (warm-up campaign persists a coverage frontier, then the same
//! evaluation seeds run under both strategies — see `ubfuzz-guide`).
//! Table 8 is the per-stage latency breakdown of the standard campaign
//! (wall-clock numbers, so it is excluded from `--table 0` and from the
//! CI stdout diffs).
//! Table 9 is the partial-sanitization comparison: the same seeds run under
//! the full, `partial:500`, and none policies over one scratch store, with
//! per-unit bug yield and expected-miss counts as columns.
//! `--trace-out FILE` streams every pipeline event (spans, counters,
//! store notes) as JSONL to `FILE` — an observer that changes no campaign
//! output byte.
//! `--strategy uniform|guided` selects the generation strategy of the
//! campaign behind Tables 3/6 (guided only differs once `--store --resume`
//! gives it a warm frontier to plan against).
//! `--san full|none|partial[:ratio[:salt]]` selects the sanitization policy
//! of the same campaign: non-full policies skip a deterministic site subset
//! per function and report expected misses on stderr
//! (`[oracle] expected-miss: …`). The default `full` is byte-identical to
//! not passing the flag at all.
//! `--ablation` prints the §4.4 oracle ablation (naive vs crash-site
//! mapping in the pristine world) instead.
//!
//! Every entry point shares ONE `SimBackend`, sized from the campaign
//! config, so the staged-compile cache persists across tables (the campaign
//! behind Table 3/6 warms the prefixes Table 5's coverage sweep reuses).
//!
//! Persistence flags (shared with `make_figures`, see `ubfuzz_bench`):
//!
//! * `--store DIR` — back the prefix cache by the on-disk store at `DIR`
//!   and merge found bugs into its cross-invocation corpus. A second
//!   invocation over the same store recompiles nothing (zero prefix
//!   misses) and renders byte-identical tables; stderr reports a
//!   machine-readable `[store] …` summary.
//! * `--resume` (requires `--store`) — additionally checkpoint the campaign
//!   at compile-unit granularity and resume any compatible checkpoint
//!   already in the store, so a killed invocation continues where it died
//!   with a bit-identical final report.
//! * `--store-budget BYTES` (requires `--store`) — after the run, compact
//!   `prefix.bin` and `sanitized.bin` down to this combined byte budget,
//!   evicting least-recently-hit entries first (see also the standalone
//!   `store_compact` binary).

use std::sync::Arc;
use ubfuzz::backend::CompilerBackend;
use ubfuzz::campaign::CampaignConfig;
use ubfuzz::obs::MetricsSink;
use ubfuzz::report;
use ubfuzz_bench::{
    arg_str, arg_value, compact_backend_stores, compare_policies, compare_strategies,
    install_recorders, render_stage_breakdown, report_frontier_telemetry,
    report_store_telemetry, run_stored_campaign, san_arg, shared_backend, store_args,
    strategy_arg,
};
use ubfuzz_simcc::defects::DefectRegistry;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let table = arg_value(&args, "--table", 0);
    let seeds = arg_value(&args, "--seeds", 30);
    let store = store_args(&args, "make_tables");
    let strategy = strategy_arg(&args, "make_tables");
    let san = san_arg(&args, "make_tables");
    // `--trace-out FILE` streams every pipeline event as JSONL; table 8
    // additionally aggregates into per-stage histograms. Both observe via
    // the process-wide recorder — campaign output bytes do not change.
    let trace_out = arg_str(&args, "--trace-out");
    let sink = (table == 8).then(|| Arc::new(MetricsSink::new()));
    install_recorders(trace_out.as_deref(), sink.as_ref(), "make_tables");
    let backend = shared_backend(&CampaignConfig::builder().seeds(seeds).build(), &store);
    let backend_dyn: Arc<dyn CompilerBackend> = backend.clone();
    let campaign = || run_stored_campaign(seeds, Arc::clone(&backend_dyn), &store, strategy, san);
    if args.iter().any(|a| a == "--ablation") {
        // The ablation replaces the table output but not the persistence
        // contract: prefixes still flow through the (possibly store-backed)
        // backend, so fall through to the telemetry tail below.
        print!("{}", report::oracle_ablation_with(Arc::clone(&backend_dyn), seeds));
    } else {
        run_tables(table, seeds, &backend, &campaign, sink.as_deref());
    }
    // Cache/store telemetry goes to stderr so stdout stays byte-comparable
    // between invocations (the CI persistence job diffs it).
    let cache = backend.session().stats();
    eprintln!(
        "[make_tables] shared compile cache across entry points: {} hits, {} misses ({:.1}% reuse)",
        cache.hits,
        cache.misses,
        100.0 * cache.reuse_ratio()
    );
    report_store_telemetry(&backend, &store);
    report_frontier_telemetry(&store);
    compact_backend_stores(&backend, &store);
}

/// Runs the guided-vs-uniform comparison behind Table 7. The warm-up
/// frontier always lives in a scratch directory that is removed afterwards
/// — never the shared `--store` — so the rendered table depends only on
/// `--seeds` and repeated invocations over one store stay byte-identical
/// (the CI persistence job diffs stdout; a store-resident frontier growing
/// between runs would change the guided plan).
fn table7(seeds: usize) -> String {
    let scratch = std::env::temp_dir().join(format!("ubfuzz_table7_{}", std::process::id()));
    let rendered = compare_strategies(seeds, (seeds / 2).max(2), &scratch).render();
    let _ = std::fs::remove_dir_all(&scratch);
    rendered
}

/// Runs the partial-sanitization comparison behind Table 9. Same scratch
/// discipline as Table 7: the three policy legs share one throwaway store
/// (so the prefix stage compiles once), never the `--store` directory, and
/// the rendered table depends only on `--seeds`.
fn table9(seeds: usize) -> String {
    let scratch = std::env::temp_dir().join(format!("ubfuzz_table9_{}", std::process::id()));
    let rendered = compare_policies(seeds, &scratch).render();
    let _ = std::fs::remove_dir_all(&scratch);
    rendered
}

fn run_tables(
    table: usize,
    seeds: usize,
    backend: &Arc<ubfuzz::SimBackend>,
    campaign: &dyn Fn() -> ubfuzz::CampaignStats,
    sink: Option<&MetricsSink>,
) {
    match table {
        2 => print!("{}", report::table2()),
        3 => {
            let stats = campaign();
            print!("{}", report::table3(&stats));
            print!("{}", report::oracle_stats(&stats));
        }
        4 => print!("{}", report::table4(&report::generator_comparison(seeds.min(200)))),
        5 => print!("{}", report::coverage_experiment_with(backend.as_ref(), seeds.min(20))),
        6 => print!("{}", report::table6(&campaign())),
        7 => print!("{}", table7(seeds)),
        9 => print!("{}", table9(seeds)),
        8 => {
            // Stage-time breakdown of the standard campaign: run it under
            // the aggregating sink main installed, then render what it saw.
            let _ = campaign();
            let sink = sink.expect("main installs a metrics sink for table 8");
            print!("{}", render_stage_breakdown(&sink.snapshot()));
        }
        _ => {
            print!("{}", report::table2());
            let stats = campaign();
            print!("{}", report::table3(&stats));
            print!("{}", report::table4(&report::generator_comparison((seeds / 3).max(2))));
            print!(
                "{}",
                report::coverage_experiment_with(backend.as_ref(), (seeds / 6).max(2))
            );
            print!("{}", report::table6(&stats));
            print!("{}", table7((seeds / 3).max(2)));
            print!("{}", table9((seeds / 3).max(2)));
            print!("{}", report::oracle_stats(&stats));
            let _ = DefectRegistry::full();
        }
    }
}
