//! Criterion benchmarks: one group per pipeline stage and per paper
//! table/figure regeneration, at reduced sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use ubfuzz::campaign::{run_campaign, CampaignConfig, GeneratorChoice};
use ubfuzz::report;
use ubfuzz_detectors::campaign::{
    run_memcheck_campaign, run_static_campaign, DetectorCampaignConfig,
};
use ubfuzz_detectors::memcheck::{self, MemcheckConfig};
use ubfuzz_detectors::staticcheck::{analyze, StaticConfig};
use ubfuzz_backend::{Artifact, RunRequest, SimBackend};
use ubfuzz_minic::{pretty, UbKind};
use ubfuzz_oracle::{
    arbitrate, trace_artifact, CompiledCell, CrashOracle, OracleInput, OracleStack,
};
use ubfuzz_seedgen::{generate_seed, SeedOptions};
use ubfuzz_simcc::defects::DefectRegistry;
use ubfuzz_simcc::pipeline::{compile, CompileConfig};
use ubfuzz_simcc::target::{OptLevel, Vendor};
use ubfuzz_simcc::Sanitizer;
use ubfuzz_simvm::run_module;
use ubfuzz_ubgen::{generate, generate_all, GenOptions};

fn bench_pipeline(c: &mut Criterion) {
    let opts = SeedOptions::default();
    let registry = DefectRegistry::full();
    let seed = generate_seed(3, &opts);
    c.bench_function("seedgen/generate_seed", |b| {
        b.iter(|| generate_seed(criterion::black_box(3), &opts))
    });
    c.bench_function("ubgen/generate_all", |b| {
        b.iter(|| generate_all(&seed, &GenOptions::default()))
    });
    c.bench_function("minic/print_parse_roundtrip", |b| {
        b.iter(|| ubfuzz_minic::parse(&pretty::print(&seed)).unwrap())
    });
    for opt in [OptLevel::O0, OptLevel::O2] {
        c.bench_function(&format!("simcc/compile_asan_{}", opt.name().trim_start_matches('-')), |b| {
            let cfg = CompileConfig::dev(Vendor::Gcc, opt, Some(Sanitizer::Asan), &registry);
            b.iter(|| compile(&seed, &cfg).unwrap())
        });
    }
    let cfg = CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &registry);
    let module = compile(&seed, &cfg).unwrap();
    c.bench_function("simvm/run_module", |b| b.iter(|| run_module(&module)));
    // Crash-site mapping on a Fig. 1-shaped discrepancy: once through the
    // pair-level primitives (trace + arbitrate), once through the full
    // trait-dispatched oracle stack over assembled cells — the delta is
    // the cost of the pluggable-oracle seam itself.
    let ub = generate_all(&seed, &GenOptions::default());
    if let Some(u) = ub.first() {
        let bc = compile(
            &u.program,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, Some(Sanitizer::Asan), &registry),
        )
        .unwrap();
        let bn = compile(
            &u.program,
            &CompileConfig::dev(Vendor::Gcc, OptLevel::O2, Some(Sanitizer::Asan), &registry),
        )
        .unwrap();
        let backend = SimBackend::uncached();
        let req = RunRequest::default();
        let cells = [
            CompiledCell {
                compiler: ubfuzz_simcc::target::CompilerId::dev(Vendor::Gcc),
                opt: OptLevel::O0,
                outcome: run_module(&bc),
                artifact: Artifact::Sim(bc),
            },
            CompiledCell {
                compiler: ubfuzz_simcc::target::CompilerId::dev(Vendor::Gcc),
                opt: OptLevel::O2,
                outcome: run_module(&bn),
                artifact: Artifact::Sim(bn),
            },
        ];
        c.bench_function("oracle/crash_site_mapping", |b| {
            b.iter(|| {
                let tc = trace_artifact(&backend, &cells[0].artifact, &req).unwrap();
                let tn = trace_artifact(&backend, &cells[1].artifact, &req).unwrap();
                arbitrate(&tc, tc.last(), &tn)
            })
        });
        let stack = OracleStack::standard();
        let input =
            OracleInput { sanitizer: Sanitizer::Asan, ub_kind: u.kind, ub_loc: u.ub_loc };
        let stack_dyn: &dyn CrashOracle = &stack;
        c.bench_function("oracle/trait_dispatch", |b| {
            b.iter(|| stack_dyn.judge(&backend, input, criterion::black_box(&cells)))
        });
    }
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    // Table 1: one shadow-statement synthesizer per UB kind (matching +
    // profiling + synthesis + interpreter validation on one seed).
    let seed = generate_seed(7, &SeedOptions::default());
    for kind in UbKind::GENERATABLE {
        g.bench_function(format!("table1_synthesis/{kind}"), |b| {
            b.iter(|| generate(&seed, kind, &GenOptions::default()))
        });
    }
    g.bench_function("table2_support_matrix", |b| b.iter(report::table2));
    g.bench_function("table3_campaign_2seeds", |b| {
        b.iter(|| {
            let stats = run_campaign(&CampaignConfig::builder().seeds(2).build());
            report::table3(&stats)
        })
    });
    g.bench_function("table4_generators_2seeds", |b| {
        b.iter(|| report::table4(&report::generator_comparison(2)))
    });
    g.bench_function("table5_coverage_2seeds", |b| {
        b.iter(|| report::coverage_experiment(2))
    });
    g.bench_function("table6_categories_2seeds", |b| {
        b.iter(|| {
            let stats = run_campaign(&CampaignConfig::builder().seeds(2).build());
            report::table6(&stats)
        })
    });
    // §4.3: the baseline generators driving the same campaign.
    for (name, generator) in
        [("music", GeneratorChoice::Music), ("csmith_nosafe", GeneratorChoice::CsmithNoSafe)]
    {
        g.bench_function(format!("baseline_campaign_2seeds/{name}"), |b| {
            b.iter(|| report::baseline_campaign(generator, 2))
        });
    }
    // §4.4: discrepancy triage statistics (selected vs. dropped).
    g.bench_function("oracle_precision_2seeds", |b| {
        b.iter(|| {
            let stats = run_campaign(&CampaignConfig::builder().seeds(2).build());
            report::oracle_stats(&stats)
        })
    });
    g.finish();
}

// The Fig. 1 / Fig. 3 / Fig. 8 programs (see the correspondingly named
// examples for the annotated walkthroughs).
const FIG1: &str = "
struct a { int x; };
struct a b[2];
struct a *c = b;
struct a *d = b;
int k = 0;
int main(void) {
    c->x = b[0].x;
    k = 2;
    c->x = (d + k)->x;
    return c->x;
}";

const FIG3: &str = "
int g;
int main(void) {
    int d[2];
    int i = 2;
    d[i] = 1;
    g = 7;
    print_value(g);
    return 0;
}";

const FIG8: &str = "
int a;
int b;
int main(void) {
    int *s = &a;
    for (b = 0; b <= 3; b = b + 1) {
        int i = *s;
        s = &i;
    }
    *s = b;
    return 0;
}";

/// Compile + run + judge one two-level ASan discrepancy end to end through
/// the standard oracle stack.
fn triage(src: &str, bn_level: OptLevel, registry: &DefectRegistry) {
    let p = ubfuzz_minic::parse(src).expect("parses");
    let dev = ubfuzz_simcc::target::CompilerId::dev(Vendor::Gcc);
    let cells: Vec<CompiledCell> = [(OptLevel::O0, dev), (bn_level, dev)]
        .into_iter()
        .map(|(opt, compiler)| {
            let m = compile(
                &p,
                &CompileConfig::dev(Vendor::Gcc, opt, Some(Sanitizer::Asan), registry),
            )
            .unwrap();
            CompiledCell { compiler, opt, outcome: run_module(&m), artifact: Artifact::Sim(m) }
        })
        .collect();
    let ub = ubfuzz_interp::run_program(&p).ub().map(|e| e.loc).unwrap_or_default();
    let backend = SimBackend::uncached();
    let input = OracleInput {
        sanitizer: Sanitizer::Asan,
        ub_kind: UbKind::BufOverflowArray,
        ub_loc: ub,
    };
    criterion::black_box(OracleStack::standard().judge(&backend, input, &cells));
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    let registry = DefectRegistry::full();
    let stats = run_campaign(&CampaignConfig::builder().seeds(3).build());
    g.bench_function("fig1_headline_bug_triage", |b| {
        b.iter(|| triage(FIG1, OptLevel::O2, &registry))
    });
    g.bench_function("fig3_optimization_artifact_triage", |b| {
        b.iter(|| triage(FIG3, OptLevel::O2, &registry))
    });
    g.bench_function("fig8_invalid_report_triage", |b| {
        b.iter(|| triage(FIG8, OptLevel::O3, &registry))
    });
    g.bench_function("fig7_bugs_per_kind", |b| b.iter(|| report::fig7(&stats)));
    g.bench_function("fig9_tracker_history", |b| b.iter(report::fig9));
    g.bench_function("fig10_affected_versions", |b| {
        b.iter(|| report::fig10(&stats, &registry))
    });
    g.bench_function("fig11_affected_levels", |b| {
        b.iter(|| report::fig11(&stats, &registry))
    });
    g.finish();
}

fn bench_detectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("detectors");
    // One Memcheck run over an uninstrumented use-after-free binary.
    let p = ubfuzz_minic::parse(
        "int main(void) { int *p = (int*)malloc(8); *p = 1; free(p); return *p; }",
    )
    .expect("parses");
    let reg = DefectRegistry::pristine();
    let module =
        compile(&p, &CompileConfig::dev(Vendor::Gcc, OptLevel::O0, None, &reg)).unwrap();
    let mc_cfg = MemcheckConfig::default();
    g.bench_function("memcheck_run_uaf", |b| b.iter(|| memcheck::run(&module, &mc_cfg)));
    // One static analysis of a seed program.
    let seed = generate_seed(7, &SeedOptions::default());
    let st_cfg = StaticConfig::default();
    g.bench_function("static_analyze_seed", |b| b.iter(|| analyze(&seed, &st_cfg)));
    // The §4.7 campaigns at 2 seeds.
    let cfg = DetectorCampaignConfig { seeds: 2, ..Default::default() };
    g.bench_function("memcheck_campaign_2seeds", |b| b.iter(|| run_memcheck_campaign(&cfg)));
    g.bench_function("static_campaign_2seeds", |b| b.iter(|| run_static_campaign(&cfg)));
    g.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! { name = pipeline; config = fast(); targets = bench_pipeline }
criterion_group! { name = tables; config = fast(); targets = bench_tables }
criterion_group! { name = figures; config = fast(); targets = bench_figures }
criterion_group! { name = detectors; config = fast(); targets = bench_detectors }
criterion_main!(pipeline, tables, figures, detectors);
