//! Smoke benchmark: sequential vs. sharded campaign throughput.
//!
//! Run with `cargo bench --bench campaign_smoke` to measure, or with
//! `-- --test` (as CI does) to execute each variant once without timing.
//! On a 4-core runner the 4-shard variant should sustain well over 1.5×
//! the sequential throughput: campaign shards are embarrassingly parallel
//! (per-seed generate→compile→run→oracle pipelines) and only merge tiny
//! bug maps at the end.

use criterion::{criterion_group, criterion_main, Criterion};
use ubfuzz::campaign::{run_campaign, CampaignConfig, ParallelCampaign};

const SEEDS: usize = 8;

fn config() -> CampaignConfig {
    CampaignConfig { seeds: SEEDS, ..CampaignConfig::default() }
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.bench_function(format!("sequential_{SEEDS}seeds"), |b| {
        b.iter(|| run_campaign(&config()))
    });
    for shards in [2usize, 4] {
        g.bench_function(format!("sharded{shards}_{SEEDS}seeds"), |b| {
            b.iter(|| ParallelCampaign::new(config()).with_shards(shards).run())
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5))
}

criterion_group! { name = campaign; config = fast(); targets = bench_campaign }
criterion_main!(campaign);
