//! Smoke benchmark: sequential vs. unit-executor campaign throughput, with
//! the staged-compile cache on and off.
//!
//! Run with `cargo bench --bench campaign_smoke` to measure, or with
//! `-- --test` (as CI does) to execute each variant once without timing.
//! The parallel variants drain fine-grained `(seed, program, compiler, opt,
//! sanitizer)` units through a work-stealing queue, so even campaigns with
//! fewer seeds than workers parallelize; on a 1-core CI box they serialize,
//! which is why the cache variants assert *hit counters*, never wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use ubfuzz::campaign::{run_campaign, CampaignConfig};

const SEEDS: usize = 8;

fn config() -> CampaignConfig {
    CampaignConfig::builder().seeds(SEEDS).build()
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.bench_function(format!("sequential_{SEEDS}seeds"), |b| {
        b.iter(|| run_campaign(&config()))
    });
    for shards in [2usize, 4] {
        g.bench_function(format!("sharded{shards}_{SEEDS}seeds"), |b| {
            b.iter(|| {
                let stats = CampaignConfig::builder()
                    .seeds(SEEDS)
                    .workers(shards)
                    .build_runner()
                    .run();
                assert!(
                    stats.cache.hits > 0,
                    "default campaign must reuse compile prefixes: {:?}",
                    stats.cache
                );
                stats
            })
        });
    }
    // Cache ablation at a fixed worker count: identical results, hit
    // counters prove which side actually cached.
    g.bench_function(format!("sharded4_nocache_{SEEDS}seeds"), |b| {
        b.iter(|| {
            let stats = CampaignConfig::builder()
                .seeds(SEEDS)
                .workers(4)
                .cache(false)
                .build_runner()
                .run();
            assert_eq!(stats.cache.hits, 0, "disabled cache must stay cold");
            assert_eq!(stats.cache.misses, 0, "disabled cache records nothing");
            stats
        })
    });
    g.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5))
}

criterion_group! { name = campaign; config = fast(); targets = bench_campaign }
criterion_main!(campaign);
