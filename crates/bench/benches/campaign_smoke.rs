//! Smoke benchmark: sequential vs. unit-executor campaign throughput, with
//! the staged-compile cache on and off, plus a cold-vs-warm persistent-store
//! comparison.
//!
//! Run with `cargo bench --bench campaign_smoke` to measure, or with
//! `-- --test` (as CI does) to execute each variant once without timing.
//! The parallel variants stream fine-grained `(seed, program, compiler,
//! opt, sanitizer)` units to the in-order oracle consumer, so even
//! campaigns with fewer seeds than workers parallelize; on a 1-core CI box
//! they serialize, which is why the cache variants assert *hit counters*,
//! never wall-clock.
//!
//! After the Criterion pass the bench emits `BENCH_campaign.json` (working
//! directory): units/sec, cache reuse ratio, and cold-store vs warm-store
//! wall time, machine-readable so future PRs can track the trajectory (CI
//! uploads it as an artifact).

use criterion::{criterion_group, Criterion};
use std::fmt::Write as _;
use std::time::Instant;
use ubfuzz::campaign::{run_campaign, CampaignConfig};
use ubfuzz::SimBackend;

const SEEDS: usize = 8;

fn config() -> CampaignConfig {
    CampaignConfig::builder().seeds(SEEDS).build()
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.bench_function(format!("sequential_{SEEDS}seeds"), |b| {
        b.iter(|| run_campaign(&config()))
    });
    for shards in [2usize, 4] {
        g.bench_function(format!("sharded{shards}_{SEEDS}seeds"), |b| {
            b.iter(|| {
                let stats = CampaignConfig::builder()
                    .seeds(SEEDS)
                    .workers(shards)
                    .build_runner()
                    .run();
                assert!(
                    stats.cache.hits > 0,
                    "default campaign must reuse compile prefixes: {:?}",
                    stats.cache
                );
                stats
            })
        });
    }
    // Cache ablation at a fixed worker count: identical results, hit
    // counters prove which side actually cached.
    g.bench_function(format!("sharded4_nocache_{SEEDS}seeds"), |b| {
        b.iter(|| {
            let stats = CampaignConfig::builder()
                .seeds(SEEDS)
                .workers(4)
                .cache(false)
                .build_runner()
                .run();
            assert_eq!(stats.cache.hits, 0, "disabled cache must stay cold");
            assert_eq!(stats.cache.misses, 0, "disabled cache records nothing");
            stats
        })
    });
    g.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5))
}

criterion_group! { name = campaign; config = fast(); targets = bench_campaign }

/// One timed campaign over an optional store directory; returns
/// (wall seconds, stats). `explicit_oracle` threads the default stack
/// through `CampaignConfig.oracle` so the dyn-dispatch seam itself is on
/// the measured path.
fn timed_run_with(
    store: Option<&std::path::Path>,
    explicit_oracle: bool,
) -> (f64, ubfuzz::CampaignStats) {
    let mut builder = CampaignConfig::builder().seeds(SEEDS);
    if explicit_oracle {
        builder = builder.oracle(std::sync::Arc::new(ubfuzz::OracleStack::standard()));
    }
    let cfg = builder.build();
    let runner = match store {
        Some(dir) => {
            let backend = std::sync::Arc::new(SimBackend::with_store_capacity(
                dir,
                cfg.prefix_key_bound(),
            ));
            ubfuzz::ParallelCampaign::new(cfg).with_backend(backend).with_shards(4)
        }
        None => ubfuzz::ParallelCampaign::new(cfg).with_shards(4),
    };
    let start = Instant::now();
    let stats = runner.run();
    (start.elapsed().as_secs_f64(), stats)
}

fn timed_run(store: Option<&std::path::Path>) -> (f64, ubfuzz::CampaignStats) {
    timed_run_with(store, false)
}

/// The machine-readable trajectory record: BENCH_campaign.json.
fn emit_bench_json() {
    let dir = std::env::temp_dir().join(format!("ubfuzz-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (cold_secs, cold) = timed_run(Some(&dir));
    let (warm_secs, warm) = timed_run(Some(&dir));
    // Compact the store down to half its size, then rerun: evicted entries
    // recompile, resident ones still hit, and the results stay identical
    // either way (the budget only trades disk for recompilation).
    let (store_before, store_after) = {
        let prefix = ubfuzz::store::PrefixStore::open_budgeted(&dir, 0);
        let sanitized = ubfuzz::store::SanitizedStore::open_budgeted(&dir, 0);
        let before = prefix.size_bytes() + sanitized.size_bytes();
        let frontier = ubfuzz::store::FrontierStore::open(&dir).size_bytes();
        let (ps, ss) = ubfuzz_bench::compact_stores(&prefix, &sanitized, frontier, before / 2);
        (before, ps.after_bytes + ss.after_bytes)
    };
    let (_, compacted) = timed_run(Some(&dir));
    let (nostore_secs, nostore) = timed_run(None);
    let (stacked_secs, stacked) = timed_run_with(None, true);
    let _ = std::fs::remove_dir_all(&dir);
    // Guided leg: a uniform warm-up persists the coverage frontier, then
    // the same evaluation seeds run under both strategies (see
    // `ubfuzz_bench::compare_strategies`). A second comparison over a fresh
    // store must reproduce the guided leg bit-for-bit — guided planning is
    // a pure function of (seed, frontier snapshot).
    let guided_dir =
        std::env::temp_dir().join(format!("ubfuzz-bench-guided-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&guided_dir);
    let cmp = ubfuzz_bench::compare_strategies(SEEDS, SEEDS / 2, &guided_dir);
    let _ = std::fs::remove_dir_all(&guided_dir);
    let cmp2 = ubfuzz_bench::compare_strategies(SEEDS, SEEDS / 2, &guided_dir);
    let _ = std::fs::remove_dir_all(&guided_dir);
    assert_eq!(cmp.guided, cmp2.guided, "guided campaign must be deterministic");
    assert_eq!(
        cmp.guided.frontier_fingerprint, cmp2.guided.frontier_fingerprint,
        "guided frontier must be deterministic"
    );
    let bugs_per_unit_uniform = ubfuzz_bench::StrategyComparison::bugs_per_unit(&cmp.uniform);
    let bugs_per_unit_guided = ubfuzz_bench::StrategyComparison::bugs_per_unit(&cmp.guided);
    // Partial-sanitization legs: the same seeds under full / partial:500 /
    // none over ONE store directory, run twice. The second pass replays the
    // first from the warm store — the sanitized table keys by site-subset
    // fingerprint, so the three policies must never alias each other's
    // cached sanitize results.
    let san_dir = std::env::temp_dir().join(format!("ubfuzz-bench-san-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&san_dir);
    let pol = ubfuzz_bench::compare_policies(SEEDS, &san_dir);
    let pol2 = ubfuzz_bench::compare_policies(SEEDS, &san_dir);
    let _ = std::fs::remove_dir_all(&san_dir);
    assert_eq!(pol.full, pol2.full, "warm store must replay the full-policy leg");
    assert_eq!(
        pol.partial, pol2.partial,
        "warm store must replay partial-policy lookups without cross-subset aliasing"
    );
    assert_eq!(pol.none, pol2.none, "warm store must replay the none-policy leg");
    assert!(
        pol.partial.bugs.len() <= pol.full.bugs.len(),
        "a partial subset's reports are a subset of full instrumentation's"
    );
    assert!(pol.none.bugs.is_empty(), "uninstrumented campaigns cannot report anything");
    assert!(
        pol.none.oracle.expected_miss_total() > 0,
        "every skipped UB site must be accounted as an expected miss"
    );
    assert_eq!(
        pol.full.oracle.expected_miss_total(),
        0,
        "full instrumentation skips nothing"
    );
    assert_eq!(pol.full, nostore, "the full policy default must be result-invisible");
    let bugs_per_unit_partial_full = ubfuzz_bench::StrategyComparison::bugs_per_unit(&pol.full);
    let bugs_per_unit_partial_half =
        ubfuzz_bench::StrategyComparison::bugs_per_unit(&pol.partial);
    let bugs_per_unit_partial_none = ubfuzz_bench::StrategyComparison::bugs_per_unit(&pol.none);
    assert!(
        bugs_per_unit_guided >= bugs_per_unit_uniform,
        "guided must not lower per-unit bug yield: \
         {bugs_per_unit_guided:.4} guided vs {bugs_per_unit_uniform:.4} uniform"
    );
    assert_eq!(cold, warm, "store must be invisible to results");
    assert_eq!(warm.cache.misses, 0, "warm store misses nothing: {:?}", warm.cache);
    assert!(
        warm.cache.san_reuse_ratio() >= 0.9,
        "warm store must replay the sanitize stage: {:?}",
        warm.cache
    );
    assert!(store_after <= store_before / 2, "compaction must respect the byte budget");
    assert_eq!(cold, compacted, "compaction must be invisible to results");
    // The pluggable-oracle seam must be identity-preserving and free:
    // an explicitly configured standard stack (dyn-dispatched per oracle
    // group) matches the implicit default in results, and its units/sec
    // must not regress beyond measurement noise (generous 2× + constant
    // bound — this box may be 1-core and noisy; the json records both
    // numbers for trajectory tracking).
    assert_eq!(nostore, stacked, "explicit oracle stack must not change results");
    assert!(
        stacked_secs <= nostore_secs * 2.0 + 0.5,
        "oracle trait dispatch regressed units/sec beyond noise: \
         {stacked_secs:.3}s stacked vs {nostore_secs:.3}s default"
    );
    // Stage-time profile: the same campaign once more under a metrics
    // sink. Telemetry is an observer — the profiled run must equal the
    // unprofiled one (CampaignStats equality ignores telemetry fields).
    let sink = std::sync::Arc::new(ubfuzz::obs::MetricsSink::new());
    let profiled = CampaignConfig::builder()
        .seeds(SEEDS)
        .workers(4)
        .recorder(sink.clone())
        .build_runner()
        .run();
    assert_eq!(profiled, nostore, "metrics recorder must not change results");
    let profile = sink.snapshot();
    for stage in [
        ubfuzz::obs::Stage::PrefixCompile,
        ubfuzz::obs::Stage::Sanitize,
        ubfuzz::obs::Stage::Run,
        ubfuzz::obs::Stage::Oracle,
    ] {
        assert!(
            profile.stages.contains_key(&stage),
            "profiled campaign must sample the {} stage",
            stage.name()
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seeds\": {},", SEEDS);
    let _ = writeln!(json, "  \"units\": {},", cold.units);
    let _ = writeln!(json, "  \"cold_store_secs\": {cold_secs:.4},");
    let _ = writeln!(json, "  \"warm_store_secs\": {warm_secs:.4},");
    let _ = writeln!(json, "  \"no_store_secs\": {nostore_secs:.4},");
    let _ = writeln!(json, "  \"explicit_oracle_secs\": {stacked_secs:.4},");
    let _ = writeln!(
        json,
        "  \"units_per_sec_explicit_oracle\": {:.2},",
        stacked.units as f64 / stacked_secs.max(1e-9)
    );
    let _ = writeln!(
        json,
        "  \"units_per_sec_cold\": {:.2},",
        cold.units as f64 / cold_secs.max(1e-9)
    );
    let _ = writeln!(
        json,
        "  \"units_per_sec_warm\": {:.2},",
        warm.units as f64 / warm_secs.max(1e-9)
    );
    let _ = writeln!(json, "  \"cache_hits_cold\": {},", cold.cache.hits);
    let _ = writeln!(json, "  \"cache_misses_cold\": {},", cold.cache.misses);
    let _ = writeln!(json, "  \"cache_reuse_ratio_cold\": {:.4},", cold.cache.reuse_ratio());
    let _ = writeln!(json, "  \"cache_reuse_ratio_warm\": {:.4},", warm.cache.reuse_ratio());
    let _ = writeln!(json, "  \"san_reuse_ratio_warm\": {:.4},", warm.cache.san_reuse_ratio());
    let _ = writeln!(json, "  \"store_bytes_before_compaction\": {store_before},");
    let _ = writeln!(json, "  \"store_bytes_after_compaction\": {store_after},");
    let _ = writeln!(json, "  \"bugs_per_unit_uniform\": {bugs_per_unit_uniform:.4},");
    let _ = writeln!(json, "  \"bugs_per_unit_guided\": {bugs_per_unit_guided:.4},");
    let _ = writeln!(json, "  \"bugs_per_unit_partial_full\": {bugs_per_unit_partial_full:.4},");
    let _ = writeln!(json, "  \"bugs_per_unit_partial_half\": {bugs_per_unit_partial_half:.4},");
    let _ = writeln!(json, "  \"bugs_per_unit_partial_none\": {bugs_per_unit_partial_none:.4},");
    let _ = writeln!(
        json,
        "  \"expected_misses_partial_half\": {},",
        pol.partial.oracle.expected_miss_total()
    );
    let _ = writeln!(
        json,
        "  \"expected_misses_partial_none\": {},",
        pol.none.oracle.expected_miss_total()
    );
    let _ = writeln!(json, "  \"frontier_points_covered\": {},", cmp.guided.frontier_points);
    let _ = writeln!(
        json,
        "  \"stage_secs_compile\": {:.6},",
        profile.stage_secs(ubfuzz::obs::Stage::PrefixCompile)
    );
    let _ = writeln!(
        json,
        "  \"stage_secs_sanitize\": {:.6},",
        profile.stage_secs(ubfuzz::obs::Stage::Sanitize)
    );
    let _ =
        writeln!(json, "  \"stage_secs_run\": {:.6},", profile.stage_secs(ubfuzz::obs::Stage::Run));
    let _ = writeln!(
        json,
        "  \"stage_secs_oracle\": {:.6}",
        profile.stage_secs(ubfuzz::obs::Stage::Oracle)
    );
    json.push_str("}\n");
    // cargo runs bench binaries with cwd = the package dir; anchor the
    // artifact at the workspace root where CI picks it up.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    std::fs::write(&out, &json).expect("write BENCH_campaign.json");
    eprintln!("[campaign_smoke] wrote {}:\n{json}", out.display());
}

fn main() {
    campaign();
    emit_bench_json();
}
