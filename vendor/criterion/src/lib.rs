//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so this vendors the surface
//! the workspace's benches use: `Criterion` with `sample_size` /
//! `warm_up_time` / `measurement_time`, `bench_function`, `benchmark_group`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock mean over `sample_size` samples (no
//! outlier analysis or HTML reports). Two CLI flags are honored, matching
//! upstream's contract with `cargo bench`:
//!
//! * `--test`: run every benchmark body exactly once and report `ok` —
//!   used by CI to smoke-test benches without paying measurement time;
//! * a positional `<filter>` substring restricting which benchmarks run.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that we accept and ignore.
                "--bench" | "--verbose" | "--quiet" | "-n" | "--noplot" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    // `&str`, not `impl AsRef<str>`: upstream criterion's signature. The
    // shim must not accept code the real crate would reject, or the
    // documented manifest-only swap back breaks.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.as_ref().to_string() }
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher { mode: Mode::Once, elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        // Warm-up: run the body until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher { mode: Mode::Once, elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Size each sample so all samples together fill the measurement budget.
        let budget = self.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b =
                Bencher { mode: Mode::Fixed(iters_per_sample), elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters.max(1) as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
        let mid = samples[samples.len() / 2];
        let lo = samples[samples.len() / 20];
        let hi = samples[samples.len() - 1 - samples.len() / 20];
        println!(
            "{id:<50} time: [{} {} {}]",
            format_time(lo),
            format_time(mid),
            format_time(hi)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// A named group of benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.c.run_one(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(2);
        self
    }

    pub fn finish(self) {}
}

enum Mode {
    /// `--test` or warm-up: run the body exactly once.
    Once,
    /// Measurement: run the body a fixed number of times, timed.
    Fixed(u64),
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Once => {
                black_box(f());
                self.iters = 1;
            }
            Mode::Fixed(n) => {
                let start = Instant::now();
                for _ in 0..n {
                    black_box(f());
                }
                self.elapsed = start.elapsed();
                self.iters = n;
            }
        }
    }
}

/// Declares a group of benchmark functions (subset of upstream's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point (subset of upstream's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
