//! Offline, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build environment has no network access, so the workspace vendors the
//! exact slice of `rand` it uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (which is ChaCha12), but every consumer in
//! this workspace only requires determinism for a fixed seed, not a specific
//! stream. All sampling here is itself deterministic given the seed.

pub mod rngs;

pub use rngs::StdRng;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random value generation (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from the range. The two-parameter shape
    /// mirrors upstream so the element type is inferred from the use site
    /// (e.g. slice indexing forces `usize`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self.next_u64_dyn())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 uniform mantissa bits give a uniform f64 in [0, 1).
        let v = (self.next_u64_dyn() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<T: RngCore> Rng for T {}

/// Minimal core RNG interface (subset of `rand::RngCore`).
pub trait RngCore {
    fn next_u64_dyn(&mut self) -> u64;
}

/// Integer types samplable by `gen_range` (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy {
    fn from_offset(lo: Self, offset: u128) -> Self;
    fn span_exclusive(lo: Self, hi: Self) -> u128;
    fn span_inclusive(lo: Self, hi: Self) -> u128;
}

/// A range that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, raw: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, raw: u64) -> T {
        let span = T::span_exclusive(self.start, self.end);
        assert!(span > 0, "gen_range: empty range");
        T::from_offset(self.start, raw as u128 % span)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, raw: u64) -> T {
        let span = T::span_inclusive(*self.start(), *self.end());
        assert!(span > 0, "gen_range: empty range");
        T::from_offset(*self.start(), raw as u128 % span)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_offset(lo: $t, offset: u128) -> $t {
                (lo as i128 + offset as i128) as $t
            }
            fn span_exclusive(lo: $t, hi: $t) -> u128 {
                (hi as i128).saturating_sub(lo as i128).max(0) as u128
            }
            fn span_inclusive(lo: $t, hi: $t) -> u128 {
                if hi < lo { 0 } else { (hi as i128 - lo as i128) as u128 + 1 }
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
