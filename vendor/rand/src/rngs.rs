//! The standard RNG: xoshiro256++ behind the `StdRng` name.

use crate::{RngCore, SeedableRng};

/// Deterministic pseudo-random generator (stands in for `rand::rngs::StdRng`).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64_dyn(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2019).
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_dyn(), b.next_u64_dyn());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-90..100);
            assert!((-90..100).contains(&v));
            let w = r.gen_range(1..=3usize);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
