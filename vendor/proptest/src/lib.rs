//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so this vendors exactly the
//! surface the workspace's property tests use:
//!
//! * the `proptest! { ... }` macro with an optional
//!   `#![proptest_config(...)]` header and `name(pat in strategy)` test
//!   functions;
//! * `ProptestConfig { cases, .. }`;
//! * `prop_assert!` / `prop_assert_eq!` / `TestCaseError`;
//! * integer-range strategies (`0u64..5000`).
//!
//! Unlike upstream there is no shrinking: a failing case reports the input
//! that produced it, which for the seed-indexed tests in this workspace is
//! already minimal (the seed *is* the test case).

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The `proptest!` macro: runs each body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strat = $strat;
                // Derive a per-test deterministic RNG so cases differ across
                // tests but reruns are reproducible.
                let mut rng = $crate::test_runner::case_rng(stringify!($name), config.rng_seed);
                for case in 0..config.cases {
                    let input = $crate::strategy::Strategy::sample(&strat, &mut rng);
                    let run = |$pat| ->
                        ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    let guard = $crate::test_runner::CaseGuard::new(stringify!($name), case, &input);
                    if let Err(e) = run(input.clone()) {
                        panic!(
                            "proptest case failed: {} (case {}/{}, input {:?}): {}",
                            stringify!($name), case + 1, config.cases, input, e
                        );
                    }
                    guard.disarm();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current property test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (left: {:?}, right: {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Fails the current property test case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
}
