//! Input strategies (subset: integer ranges).

use rand::{Rng, StdRng};

/// A source of sampled test inputs (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value: Clone + core::fmt::Debug;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// An explicit list of inputs, cycled through in order. Used where upstream
/// proptest would use `prop::sample::select`.
#[derive(Debug, Clone)]
pub struct Select<T: Clone + core::fmt::Debug>(pub Vec<T>);

impl<T: Clone + core::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(!self.0.is_empty(), "Select over an empty list");
        self.0[rng.gen_range(0..self.0.len())].clone()
    }
}
