//! Test-runner plumbing: config, errors, per-case reporting.

use rand::{SeedableRng, StdRng};

/// Configuration for a `proptest!` block (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Base seed for the deterministic case RNG.
    pub rng_seed: u64,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, rng_seed: 0x5EED_CAFE, max_shrink_iters: 0 }
    }
}

/// A failed property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input should be discarded (accepted for API compatibility).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Derives the per-test RNG: reruns of the same test are reproducible, but
/// distinct tests draw distinct case sequences.
pub fn case_rng(test_name: &str, base_seed: u64) -> StdRng {
    let mut h = base_seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Prints the failing input when a property body panics (instead of
/// returning `TestCaseError`), so the case is still identifiable.
pub struct CaseGuard {
    message: Option<String>,
}

impl CaseGuard {
    pub fn new(test_name: &str, case: u32, input: &dyn core::fmt::Debug) -> CaseGuard {
        CaseGuard {
            message: Some(format!(
                "proptest case panicked: {test_name} (case {}, input {input:?})",
                case + 1
            )),
        }
    }

    pub fn disarm(mut self) {
        self.message = None;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if let Some(msg) = &self.message {
            if std::thread::panicking() {
                eprintln!("{msg}");
            }
        }
    }
}
